package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// SentinelCompare flags error-identity operations that break under
// error wrapping: == / != against a sentinel `ErrX` variable, switch
// cases over sentinel values, and type assertions or type switches on
// error-typed operands naming `*SomethingError` types. errors.Is and
// errors.As follow wrap chains; identity tests do not.
//
// Two shapes are deliberately exempt:
//
//   - comparisons inside a method named Is — that method IS the
//     errors.Is protocol hook, where identity against the sentinel is
//     the whole point;
//   - assertions on operands not named like errors (e.g. a recover()
//     result, which is an any, not an error travelling a wrap chain).
var SentinelCompare = &Analyzer{
	Name: "sentinelcompare",
	Doc:  "sentinel and typed errors must be tested with errors.Is / errors.As",
	Run:  runSentinelCompare,
}

// isSentinelName reports an exported-or-not sentinel error identifier:
// Err followed by an upper-case letter (ErrBudget, ErrPreempted, ...).
func isSentinelName(name string) bool {
	return len(name) > 3 && strings.HasPrefix(name, "Err") &&
		!strings.HasPrefix(name, "Error") &&
		unicode.IsUpper(rune(name[3]))
}

// sentinelRef matches an identifier or selector naming a sentinel.
func sentinelRef(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if isSentinelName(x.Name) {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if isSentinelName(x.Sel.Name) {
			if pkg, ok := x.X.(*ast.Ident); ok {
				return pkg.Name + "." + x.Sel.Name, true
			}
			return x.Sel.Name, true
		}
	}
	return "", false
}

// errorTypeName matches a type expression naming an error type:
// *PreemptError, *emu.SemanticsError, faultinject.ErrInjected.
func errorTypeName(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.StarExpr:
		if name, ok := errorTypeName(x.X); ok {
			return "*" + name, true
		}
	case *ast.Ident:
		if strings.HasSuffix(x.Name, "Error") || isSentinelName(x.Name) {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if name, ok := errorTypeName(x.Sel); ok {
			if pkg, ok := x.X.(*ast.Ident); ok {
				return pkg.Name + "." + name, true
			}
			return name, true
		}
	}
	return "", false
}

// errorishOperand reports whether the expression is named like an error
// value — the calibration that keeps assertions on recover() results
// (conventionally r) out of scope.
func errorishOperand(e ast.Expr) bool {
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	return lower == "err" || strings.HasSuffix(lower, "err") || strings.HasSuffix(name, "Error")
}

func runSentinelCompare(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// The errors.Is protocol hook compares identity by design.
			if fn.Name.Name == "Is" && fn.Recv != nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					if x.Op != token.EQL && x.Op != token.NEQ {
						return true
					}
					name, ok := sentinelRef(x.X)
					if !ok {
						name, ok = sentinelRef(x.Y)
					}
					if ok {
						pass.Report(Diagnostic{Pos: x.OpPos, Message: fmt.Sprintf(
							"comparing against sentinel %s with %v breaks under error wrapping; use errors.Is",
							name, x.Op)})
					}
				case *ast.SwitchStmt:
					if x.Tag == nil || !errorishOperand(x.Tag) {
						return true
					}
					for _, clause := range x.Body.List {
						for _, v := range clause.(*ast.CaseClause).List {
							if name, ok := sentinelRef(v); ok {
								pass.Report(Diagnostic{Pos: v.Pos(), Message: fmt.Sprintf(
									"switching on sentinel %s breaks under error wrapping; use errors.Is",
									name)})
							}
						}
					}
				case *ast.TypeAssertExpr:
					if x.Type == nil || !errorishOperand(x.X) {
						return true
					}
					if name, ok := errorTypeName(x.Type); ok {
						pass.Report(Diagnostic{Pos: x.Lparen, Message: fmt.Sprintf(
							"asserting an error to %s breaks under error wrapping; use errors.As",
							name)})
					}
				case *ast.TypeSwitchStmt:
					operand := typeSwitchOperand(x)
					if operand == nil || !errorishOperand(operand) {
						return true
					}
					for _, clause := range x.Body.List {
						for _, ty := range clause.(*ast.CaseClause).List {
							if name, ok := errorTypeName(ty); ok {
								pass.Report(Diagnostic{Pos: ty.Pos(), Message: fmt.Sprintf(
									"type-switching an error on %s breaks under error wrapping; use errors.As",
									name)})
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// typeSwitchOperand extracts x from `switch x.(type)` or
// `switch v := x.(type)`.
func typeSwitchOperand(s *ast.TypeSwitchStmt) ast.Expr {
	switch a := s.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	}
	return nil
}

// Package lint implements this repository's project-specific static
// analyses over the standard library's go/ast, shaped after the
// go/analysis framework (the container ships no golang.org/x/tools, so
// the Analyzer/Pass/Diagnostic surface is reproduced here in miniature).
//
// Two conventions are enforced:
//
//   - Sentinel errors and typed errors flow through errors.Is and
//     errors.As; direct identity comparisons (err == ErrX) and type
//     assertions on error values break once errors are wrapped with
//     %w, which the VM's recovery paths do.
//
//   - Metrics and profiling hooks (internal/metrics, internal/prof)
//     have nil-safe receivers by design: a disabled registry or
//     profiler is a nil pointer whose methods are cheap no-ops. Call
//     sites must rely on that instead of wrapping bare hook calls in
//     `if x != nil { ... }` guards, which duplicate the receiver's own
//     check and drift out of sync as hooks are added. A guard that
//     does real work beyond the hook calls (computing arguments,
//     branching) is allowed — the guard then earns its keep.
package lint

import (
	"go/ast"
	"go/token"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed files through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Report   func(Diagnostic)
}

// Analyzer is one named analysis, mirroring golang.org/x/tools'
// analysis.Analyzer in miniature.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Analyzers returns every analyzer in the suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SentinelCompare, GuardedHook}
}

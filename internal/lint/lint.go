// Package lint implements this repository's project-specific static
// analyses over the standard library's go/ast, shaped after the
// go/analysis framework (the container ships no golang.org/x/tools, so
// the Analyzer/Pass/Diagnostic surface is reproduced here in miniature).
//
// Two conventions are enforced:
//
//   - Sentinel errors and typed errors flow through errors.Is and
//     errors.As; direct identity comparisons (err == ErrX) and type
//     assertions on error values break once errors are wrapped with
//     %w, which the VM's recovery paths do.
//
//   - Metrics and profiling hooks (internal/metrics, internal/prof)
//     have nil-safe receivers by design: a disabled registry or
//     profiler is a nil pointer whose methods are cheap no-ops. Call
//     sites must rely on that instead of wrapping bare hook calls in
//     `if x != nil { ... }` guards, which duplicate the receiver's own
//     check and drift out of sync as hooks are added. A guard that
//     does real work beyond the hook calls (computing arguments,
//     branching) is allowed — the guard then earns its keep.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed files through an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Report   func(Diagnostic)
}

// Analyzer is one named analysis, mirroring golang.org/x/tools'
// analysis.Analyzer in miniature.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Analyzers returns the default suite, in reporting order. Opt-in
// analyzers (ExportedDoc) are excluded; select them by name through
// Select.
func Analyzers() []*Analyzer {
	return []*Analyzer{SentinelCompare, GuardedHook}
}

// All returns every analyzer, default suite first, then opt-in ones.
func All() []*Analyzer {
	return append(Analyzers(), ExportedDoc)
}

// Select resolves a list of analyzer names (from ildpanalyze -select)
// against All. An empty list selects the default suite; an unknown
// name is an error listing what exists.
func Select(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	known := make([]string, 0, len(All()))
	for _, a := range All() {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)",
				name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

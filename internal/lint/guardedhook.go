package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// GuardedHook flags `if x != nil { ... }` guards around metrics and
// profiling hook calls whose body does nothing but call hooks on the
// guarded receiver. Those receivers (metrics.Registry, metrics.Counter,
// metrics.Histogram, prof.Profiler) are nil-safe by contract — every
// method no-ops on a nil receiver — so the guard duplicates a check the
// callee already makes and rots as hook calls are added or moved.
//
// A guard whose body does anything beyond bare hook calls (binds
// locals, computes expensive arguments once, branches) is allowed: it
// is then guarding real work, not just the calls.
var GuardedHook = &Analyzer{
	Name: "guardedhook",
	Doc:  "metrics/prof hooks are nil-safe; drop bare `if x != nil { x.Hook() }` guards",
	Run:  runGuardedHook,
}

// hookRootName extracts the telltale name of a guarded expression:
// the field or function yielding the receiver (v.cfg.Metrics -> Metrics,
// c.prof -> prof, currentMetrics() -> currentMetrics).
func hookRootName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.CallExpr:
		return hookRootName(x.Fun)
	}
	return ""
}

// isHookSource reports whether the name denotes a metrics registry or
// execution profiler by this repository's naming conventions.
func isHookSource(name string) bool {
	if name == "reg" || name == "prof" {
		return true
	}
	return strings.Contains(name, "Metrics") || strings.Contains(name, "Prof")
}

func runGuardedHook(pass *Pass) error {
	exprText := func(e ast.Expr) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
			return ""
		}
		return buf.String()
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok || ifStmt.Else != nil || len(ifStmt.Body.List) == 0 {
				return true
			}
			guarded, src := guardedNilCheck(ifStmt, exprText)
			if guarded == "" || !isHookSource(src) {
				return true
			}
			for _, stmt := range ifStmt.Body.List {
				expr, ok := stmt.(*ast.ExprStmt)
				if !ok {
					return true // real work inside: the guard is earning its keep
				}
				call, ok := expr.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !strings.HasPrefix(exprText(call), guarded+".") {
					return true
				}
			}
			pass.Report(Diagnostic{Pos: ifStmt.If, Message: fmt.Sprintf(
				"%s is nil-safe; call its hooks directly instead of guarding with != nil", guarded)})
			return true
		})
	}
	return nil
}

// guardedNilCheck matches `if x != nil` / `if x := expr; x != nil`,
// returning the guarded receiver (the rendered expression body calls
// must chain from) and the name of its source expression, used to
// recognize metrics/prof receivers.
func guardedNilCheck(s *ast.IfStmt, exprText func(ast.Expr) string) (guarded, src string) {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return "", ""
	}
	operand := cond.X
	if isNil(operand) {
		operand = cond.Y
	} else if !isNil(cond.Y) {
		return "", ""
	}

	if s.Init != nil {
		assign, ok := s.Init.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return "", ""
		}
		name, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return "", ""
		}
		if id, ok := operand.(*ast.Ident); !ok || id.Name != name.Name {
			return "", ""
		}
		return name.Name, hookRootName(assign.Rhs[0])
	}

	// Guard without init: the body calls through the condition's own
	// expression, e.g. `if c.reg != nil { c.reg.Event(...) }`.
	switch operand.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return exprText(operand), hookRootName(operand)
	}
	return "", ""
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

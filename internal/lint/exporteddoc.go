package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// ExportedDoc flags exported package-level symbols that lack a doc
// comment: functions, methods on exported receivers, and the types,
// variables and constants of exported name in top-level declarations.
// Grouped declarations (`var ( ... )`, `const ( ... )`) pass when the
// group itself is documented or every exported spec inside carries its
// own comment; iota-style continuation specs (no type, no values)
// inherit the group's doc. A file named like a command entry point
// (package main) is exempt — nothing is importable from it.
//
// The analyzer is opt-in: it is not part of the default Analyzers()
// suite, because most packages in this repository predate the
// convention. Select it explicitly (ildpanalyze -select exporteddoc)
// for the packages that opt in — the public cache surface
// (internal/tcache, internal/fragstore) does in ci/check.sh.
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc:  "exported package-level symbols must carry doc comments",
	Run:  runExportedDoc,
}

// hasDoc reports a non-empty doc comment group.
func hasDoc(g *ast.CommentGroup) bool {
	return g != nil && len(g.List) > 0
}

func runExportedDoc(pass *Pass) error {
	for _, file := range pass.Files {
		if file.Name.Name == "main" || strings.HasSuffix(file.Name.Name, "_test") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
	return nil
}

// checkFuncDoc flags exported functions and exported methods whose
// receiver type is itself exported (methods on unexported types are
// invisible in godoc, so a missing comment there is a style choice,
// not a documentation gap).
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || hasDoc(d.Doc) {
		return
	}
	kind := "function"
	if d.Recv != nil {
		recv, ok := receiverTypeName(d.Recv)
		if !ok || !ast.IsExported(recv) {
			return
		}
		kind = "method " + recv + "."
	}
	pass.Report(Diagnostic{Pos: d.Name.Pos(), Message: fmt.Sprintf(
		"exported %s%s has no doc comment", kindPrefix(kind), d.Name.Name)})
}

// kindPrefix normalises the two shapes "function" and "method T." into
// a message fragment reading naturally either way.
func kindPrefix(kind string) string {
	if kind == "function" {
		return "function "
	}
	return kind
}

// receiverTypeName extracts the receiver's base type name from
// `func (x T)` or `func (x *T)`, including generic receivers `T[P]`.
func receiverTypeName(recv *ast.FieldList) (string, bool) {
	if recv == nil || len(recv.List) != 1 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name, true
		default:
			return "", false
		}
	}
}

// checkGenDoc flags exported names in type/var/const declarations.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !hasDoc(s.Doc) && !hasDoc(s.Comment) {
				pass.Report(Diagnostic{Pos: s.Name.Pos(), Message: fmt.Sprintf(
					"exported type %s has no doc comment", s.Name.Name)})
			}
		case *ast.ValueSpec:
			// An iota continuation (`KindB` after `KindA Kind = iota`)
			// is covered by whatever documents the group.
			if d.Lparen.IsValid() && s.Type == nil && len(s.Values) == 0 {
				continue
			}
			if groupDoc || hasDoc(s.Doc) || hasDoc(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Report(Diagnostic{Pos: name.Pos(), Message: fmt.Sprintf(
						"exported %s %s has no doc comment", declKind(d), name.Name)})
				}
			}
		}
	}
}

// declKind renders the GenDecl token as the word used in diagnostics.
func declKind(d *ast.GenDecl) string {
	return d.Tok.String() // "var" or "const"
}

package workload

import (
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/vm"
)

func TestAllWorkloadsAssemble(t *testing.T) {
	for _, spec := range All(1) {
		if _, err := spec.Program(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("got %d workloads, want 12 (SPEC CPU2000 INT)", len(names))
	}
	for _, want := range []string{"gzip", "gcc", "mcf", "perlbmk", "eon", "vortex"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing workload %s", want)
		}
	}
	if _, err := ByName("nonesuch", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, spec := range All(1) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cpu := emu.New(mem.New())
			if err := cpu.LoadProgram(spec.MustProgram()); err != nil {
				t.Fatal(err)
			}
			if err := cpu.Run(100_000_000); err != nil {
				t.Fatalf("interpretation failed: %v", err)
			}
			if !cpu.Halted || cpu.ExitStatus != 0 {
				t.Fatalf("halted=%v status=%d", cpu.Halted, cpu.ExitStatus)
			}
			if cpu.InstCount < 50_000 {
				t.Errorf("only %d instructions executed; workload too small", cpu.InstCount)
			}
			if cpu.InstCount > 20_000_000 {
				t.Errorf("%d instructions at scale 1; workload too large for tests", cpu.InstCount)
			}
		})
	}
}

// TestWorkloadDBTEquivalence is the system-level keystone: every workload
// must produce identical architected state under the co-designed VM and
// under pure interpretation.
func TestWorkloadDBTEquivalence(t *testing.T) {
	for _, spec := range All(1) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ref := emu.New(mem.New())
			if err := ref.LoadProgram(spec.MustProgram()); err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(100_000_000); err != nil {
				t.Fatal(err)
			}

			cfg := vm.DefaultConfig()
			cfg.HotThreshold = 10
			v := vm.New(mem.New(), cfg)
			if err := v.LoadProgram(spec.MustProgram()); err != nil {
				t.Fatal(err)
			}
			if err := v.Run(200_000_000); err != nil {
				t.Fatalf("vm: %v", err)
			}
			for r := 0; r < alpha.NumRegs-1; r++ {
				if v.CPU().Reg[r] != ref.Reg[r] {
					t.Errorf("r%d = %#x, want %#x", r, v.CPU().Reg[r], ref.Reg[r])
				}
			}
			if v.Stats.Fragments == 0 {
				t.Error("no translation happened")
			}
			frac := float64(v.Stats.TransVInsts) / float64(v.Stats.TotalVInsts())
			if frac < 0.5 {
				t.Errorf("translated fraction %.2f too low", frac)
			}
		})
	}
}

func TestWorkloadPersonalities(t *testing.T) {
	// Workload character checks: the stand-ins must stress what their
	// SPEC counterparts stress in the paper.
	stats := map[string]*vm.Stats{}
	for _, spec := range All(1) {
		cfg := vm.DefaultConfig()
		cfg.HotThreshold = 10
		v := vm.New(mem.New(), cfg)
		if err := v.LoadProgram(spec.MustProgram()); err != nil {
			t.Fatal(err)
		}
		if err := v.Run(200_000_000); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		stats[spec.Name] = &v.Stats
	}
	indirectRate := func(name string) float64 {
		s := stats[name]
		return float64(s.RASHits+s.RASMisses+s.SWPredHits+s.SWPredMisses) /
			float64(s.TransVInsts)
	}
	// perlbmk and eon are the indirect-control-heavy stand-ins; gzip and
	// crafty are loop kernels with almost none.
	if indirectRate("perlbmk") < 4*indirectRate("gzip") {
		t.Errorf("perlbmk indirect rate %.4f should dwarf gzip's %.4f",
			indirectRate("perlbmk"), indirectRate("gzip"))
	}
	if indirectRate("eon") < 4*indirectRate("crafty") {
		t.Errorf("eon indirect rate %.4f should dwarf crafty's %.4f",
			indirectRate("eon"), indirectRate("crafty"))
	}
	// eon's returns should hit the dual RAS.
	if stats["eon"].RASHits == 0 {
		t.Error("eon never hit the dual-address RAS")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	count := func(scale int) uint64 {
		spec, err := ByName("gzip", scale)
		if err != nil {
			t.Fatal(err)
		}
		cpu := emu.New(mem.New())
		if err := cpu.LoadProgram(spec.MustProgram()); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Run(500_000_000); err != nil {
			t.Fatal(err)
		}
		return cpu.InstCount
	}
	c1, c3 := count(1), count(3)
	if c3 < c1*2 {
		t.Errorf("scale 3 (%d insts) should be at least twice scale 1 (%d)", c3, c1)
	}
}

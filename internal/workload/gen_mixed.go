package workload

import "fmt"

// genParser builds the dictionary-lookup kernel: hash a probe word, then
// linear-probe a 512-entry table with compare loops — branchy with
// unpredictable search lengths, like 197.parser.
func genParser(scale int, seed uint64) string {
	outer := 900 * scale
	return prologue + fmt.Sprintf(`
	; build the dictionary: dict[i] = i * 2654435761 (golden-ratio hash)
	ldiq  a0, dict
	clr   t0
	ldiq  t1, 0x1E3779B1
dbuild:
	mulq  t0, t1, t2
	stq   t2, 0(a0)
	lda   a0, 8(a0)
	addq  t0, #1, t0
	ldiq  t3, 512
	subq  t3, t0, t3
	bne   t3, dbuild

	ldiq  s0, %d
	ldiq  s1, %#x            ; LCG state
	clr   s4                 ; hit counter
pouter:
	; make a probe: roughly half are dictionary members
	ldiq  t2, 0x343FD
	mulq  s1, t2, s1
	addq  s1, #21, s1
	srl   s1, #11, t0
	blbc  t0, pmiss
	; member probe: dict[t0 & 511]
	ldiq  t3, 511
	and   t0, t3, t0
	ldiq  t1, 0x1E3779B1
	mulq  t0, t1, t4         ; the probe value
	br    plook
pmiss:
	bis   t0, #1, t4         ; junk value, rarely present
plook:
	; hash and linear probe
	srl   t4, #5, t5
	xor   t4, t5, t5
	ldiq  t3, 511
	and   t5, t3, t5         ; start slot
	ldiq  a2, 24             ; probe limit
ploop:
	ldiq  t6, dict
	s8addq t5, t6, t6
	ldq   t7, 0(t6)
	srl   t7, #17, t8
	xor   t7, t8, t8
	sll   t8, #3, t8
	subq  t8, t7, t8
	cmpeq t7, t4, t8
	bne   t8, pfound
	addq  t5, #1, t5
	ldiq  t3, 511
	and   t5, t3, t5
	subq  a2, #1, a2
	bne   a2, ploop
	br    pnext
pfound:
	addq  s4, #1, s4
pnext:
	subq  s0, #1, s0
	bne   s0, pouter
	ldiq  t7, psink
	stq   s4, 0(t7)
	br    done
`, outer, dataSeed(0x51CABB5, seed, 8)) + epilogue + `
	.data 0x100000
dict:
	.space 4096
psink:
	.quad 0
`
}

// genTwolf builds the annealing kernel: array-indexed cost evaluation with
// multiplies and cmov-selected minima, like 300.twolf's inner loops.
func genTwolf(scale int, seed uint64) string {
	outer := 18 * scale
	return prologue + fmt.Sprintf(`
	; fill the cell cost array
	ldiq  a0, cells
	ldiq  t0, 512
	ldiq  t1, %#x
	ldiq  t2, 0x41C64E6D
tfill:
	mulq  t1, t2, t1
	addq  t1, #67, t1
	srl   t1, #3, t3
	stq   t3, 0(a0)
	lda   a0, 8(a0)
	subq  t0, #1, t0
	bne   t0, tfill

	ldiq  s0, %d
touter:
	ldiq  a0, cells
	ldiq  a1, 255
	ldiq  v0, 0x7FFF0000      ; running minimum
	clr   s3                  ; index of minimum
	clr   t9                  ; loop index
tloop:
	ldq   t0, 0(a0)
	ldq   t1, 8(a0)
	subq  t0, t1, t2
	mulq  t2, t2, t2          ; squared displacement cost
	srl   t2, #4, t2
	addq  t2, t1, t2
	cmplt t2, v0, t3
	cmovne t3, t2, v0         ; v0 = min(v0, cost)
	cmovne t3, t9, s3         ; remember argmin
	ldq   t0, 8(a0)
	ldq   t1, 16(a0)
	subq  t0, t1, t2
	mulq  t2, t2, t2
	srl   t2, #4, t2
	addq  t2, t1, t2
	cmplt t2, v0, t3
	cmovne t3, t2, v0
	cmovne t3, t9, s3
	lda   a0, 16(a0)
	addq  t9, #2, t9
	subq  a1, #1, a1
	bne   a1, tloop
	; perturb the minimum cell (annealing move)
	ldiq  t4, cells
	s8addq s3, t4, t4
	ldq   t5, 0(t4)
	xor   t5, v0, t5
	bis   t5, #1, t5
	stq   t5, 0(t4)
	subq  s0, #1, s0
	bne   s0, touter
	br    done
`, dataSeed(0x2AB5, seed, 9), outer) + epilogue + `
	.data 0x100000
cells:
	.space 4104
`
}

// genVortex builds the OO-database kernel: fixed-layout object records
// with field loads/stores, static call chains, and index traversals, like
// 255.vortex.
func genVortex(scale int, seed uint64) string {
	outer := 35 * scale
	return prologue + fmt.Sprintf(`
	; build 256 objects of 64 bytes, chained into an index
	ldiq  a0, vobjs
	clr   t0
vbuild:
	stq   t0, 0(a0)           ; key
	sll   t0, #3, t1
	stq   t1, 8(a0)           ; field a
	xor   t0, t1, t2
	stq   t2, 16(a0)          ; field b
	stq   zero, 24(a0)        ; refcount
	addq  t0, #1, t3
	ldiq  t4, 255
	and   t3, t4, t3
	sll   t3, #6, t3
	ldiq  t4, vobjs
	addq  t4, t3, t3
	stq   t3, 32(a0)          ; next in index ring
	lda   a0, 64(a0)
	addq  t0, #1, t0
	ldiq  t4, 256
	subq  t4, t0, t4
	bne   t4, vbuild

	ldiq  s0, %d
vouter:
	ldiq  s1, vobjs
	ldiq  s2, 256
vloop:
	mov   s1, a0
	bsr   vtouch
	bsr   vvalidate
	ldq   s1, 32(s1)          ; follow the index ring
	subq  s2, #1, s2
	bne   s2, vloop
	subq  s0, #1, s0
	bne   s0, vouter
	br    done

vtouch:
	ldq   t0, 8(a0)
	ldq   t1, 16(a0)
	addq  t0, t1, t2
	srl   t2, #5, t0
	xor   t2, t0, t0
	sll   t0, #1, t1
	subq  t1, t0, t0
	addq  t2, t0, t2
	stq   t2, 16(a0)
	ldq   t3, 24(a0)
	addq  t3, #1, t3
	stq   t3, 24(a0)
	ret

vvalidate:
	ldq   t0, 0(a0)
	ldq   t1, 16(a0)
	xor   t0, t1, t2
	and   t2, #127, t2
	addq  v0, t2, v0
	ret
`, outer) + epilogue + `
	.data 0x100000
vobjs:
	.space 16384
`
}

// genVPR builds the routing kernel: walks over a 64x64 grid with
// data-dependent direction branches and bounds checks, like 175.vpr.
func genVPR(scale int, seed uint64) string {
	outer := 60 * scale
	return prologue + fmt.Sprintf(`
	; fill the 64x64 cost grid
	ldiq  a0, grid
	ldiq  t0, 4096
	ldiq  t1, %#x
	ldiq  t2, 0x343FD
gfill:
	mulq  t1, t2, t1
	addq  t1, #53, t1
	srl   t1, #9, t3
	ldiq  t4, 255
	and   t3, t4, t3
	stq   t3, 0(a0)
	lda   a0, 8(a0)
	subq  t0, #1, t0
	bne   t0, gfill

	ldiq  s0, %d
	clr   s1                  ; LCG
router:
	clr   s2                  ; x
	clr   s3                  ; y
	clr   v0                  ; path cost
	ldiq  s4, 200             ; steps per route
rstep:
	; cost += grid[y*64+x]
	sll   s3, #6, t0
	addq  t0, s2, t0
	ldiq  t1, grid
	s8addq t0, t1, t1
	ldq   t2, 0(t1)
	srl   t2, #2, t5
	addq  t2, t5, t5
	xor   t5, t2, t5
	and   t5, #255, t5
	addq  v0, t5, v0
	; pick a direction from the LCG
	ldiq  t3, 0x343FD
	mulq  s1, t3, s1
	addq  s1, #19, s1
	srl   s1, #13, t4
	and   t4, #3, t4
	cmpeq t4, #0, t5
	bne   t5, rright
	cmpeq t4, #1, t5
	bne   t5, rleft
	cmpeq t4, #2, t5
	bne   t5, rup
	; down
	subq  s3, #1, s3
	bge   s3, rclip
	clr   s3
	br    rclip
rright:
	addq  s2, #1, s2
	ldiq  t6, 63
	cmple s2, t6, t7
	bne   t7, rclip
	mov   t6, s2
	br    rclip
rleft:
	subq  s2, #1, s2
	bge   s2, rclip
	clr   s2
	br    rclip
rup:
	addq  s3, #1, s3
	ldiq  t6, 63
	cmple s3, t6, t7
	bne   t7, rclip
	mov   t6, s3
rclip:
	subq  s4, #1, s4
	bne   s4, rstep
	; commit the route cost
	ldiq  t7, rsink
	ldq   t8, 0(t7)
	addq  t8, v0, t8
	stq   t8, 0(t7)
	subq  s0, #1, s0
	bne   s0, router
	br    done
`, dataSeed(0x1F123BB5, seed, 10), outer) + epilogue + `
	.data 0x100000
grid:
	.space 32768
rsink:
	.quad 0
`
}

package workload

import (
	"fmt"
	"strings"
)

// genGCC builds the branchy compiler-pass kernel: a long chain of distinct
// basic blocks with data-dependent conditional branches, a 16-way switch
// through a jump table, and helper calls — large static footprint and a
// high branch density, like 176.gcc.
func genGCC(scale int, seed uint64) string {
	outer := 700 * scale
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, `
	ldiq  s1, %#x      ; rolling state
	ldiq  s2, 0x41C64E6D
	ldiq  s0, %d
gouter:
	mulq  s1, s2, s1
	addq  s1, #99, s1
	mov   s1, t8
`, dataSeed(0x1234ABCD, seed, 5), outer)
	// 40 generated basic blocks, each testing a different bit of the
	// rolling state.
	rng := lcg(0xBEEF)
	for i := 0; i < 40; i++ {
		bit := int(rng.next() % 23)
		op := []string{"addq", "xor", "subq", "bis", "and"}[int(rng.next()%5)]
		if i%10 == 9 {
			// One in five branches is data-random (hard to predict).
			fmt.Fprintf(&b, `
gblk%d:
	srl   t8, #%d, t0
	blbc  t0, gskip%d
	%s    s1, #%d, t1
	addq  v0, t1, v0
	srl   t8, #1, t8
gskip%d:
`, i, bit, i, op, 1+int(rng.next()%100), i)
			continue
		}
		// Most branches are strongly biased, as in real compiled code:
		// taken unless three specific state bits line up.
		fmt.Fprintf(&b, `
gblk%d:
	srl   t8, #%d, t0
	and   t0, #7, t0
	bne   t0, gskip%d
	%s    s1, #%d, t1
	addq  v0, t1, v0
gskip%d:
`, i, bit, i, op, 1+int(rng.next()%100), i)
	}
	// 16-way switch through a jump table, then helper calls.
	b.WriteString(`
	and   s1, #15, t0
	ldiq  t1, gjtab
	s8addq t0, t1, t1
	ldq   t2, 0(t1)
	jmp   (t2)
`)
	for c := 0; c < 16; c++ {
		fmt.Fprintf(&b, `
gcase%d:
	addq  v0, #%d, v0
	br    gjoin
`, c, c+1)
	}
	b.WriteString(`
gjoin:
	bsr   ghelper
	subq  s0, #1, s0
	bne   s0, gouter
	br    done

ghelper:
	addq  v0, s1, v0
	srl   v0, #3, t0
	xor   v0, t0, v0
	ret
`)
	b.WriteString(epilogue)
	b.WriteString(`
	.data 0x100000
gjtab:
`)
	for c := 0; c < 16; c++ {
		fmt.Fprintf(&b, "\t.quad gcase%d\n", c)
	}
	return b.String()
}

// genPerlbmk builds the interpreter-dispatch kernel: a bytecode loop whose
// register-indirect jump dominates — the chaining stress case of Fig. 5.
func genPerlbmk(scale int, seed uint64) string {
	outer := 10 * scale
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, `
	; generate a bytecode stream (values 0..7)
	ldiq  a0, pcode
	ldiq  t0, 1024
	ldiq  t1, %#x
	ldiq  t2, 0x41C64E6D
pfill:
	mulq  t1, t2, t1
	addq  t1, #11, t1
	srl   t1, #13, t3
	and   t3, #7, t3
	stb   t3, 0(a0)
	lda   a0, 1(a0)
	subq  t0, #1, t0
	bne   t0, pfill

	ldiq  s0, %d
pouter:
	ldiq  s1, pcode          ; bytecode pc
	ldiq  s2, 1024           ; remaining
	clr   v0
pdispatch:
	ldbu  t0, 0(s1)
	lda   s1, 1(s1)
	ldiq  t1, ptab
	s8addq t0, t1, t1
	ldq   t2, 0(t1)
	jmp   (t2)
`, dataSeed(0x5DEECE66, seed, 6), outer)
	for op := 0; op < 8; op++ {
		fmt.Fprintf(&b, `
pop%d:
	addq  v0, #%d, v0
	xor   v0, s1, t3
	srl   t3, #4, t4
	addq  t3, t4, t3
	sll   t3, #2, t4
	xor   t3, t4, t3
	and   t3, #255, t3
	addq  v0, t3, v0
`, op, op+3)
		if op == 3 {
			b.WriteString("\tbsr   phelper\n")
		}
		if op == 6 {
			b.WriteString("\tbsr   phelper2\n")
		}
		b.WriteString(`	subq  s2, #1, s2
	bne   s2, pdispatch
	br    pnext
`)
	}
	b.WriteString(`
pnext:
	subq  s0, #1, s0
	bne   s0, pouter
	br    done

phelper:
	srl   v0, #2, t4
	addq  v0, t4, v0
	ret

phelper2:
	sll   v0, #1, t4
	xor   v0, t4, v0
	ret
`)
	b.WriteString(epilogue)
	b.WriteString(`
	.data 0x100000
pcode:
	.space 1024
	.align 8
ptab:
`)
	for op := 0; op < 8; op++ {
		fmt.Fprintf(&b, "\t.quad pop%d\n", op)
	}
	return b.String()
}

// genGap builds the computer-algebra kernel: a small bytecode dispatcher
// plus multi-word (bignum) addition loops with carry chains.
func genGap(scale int, seed uint64) string {
	outer := 420 * scale
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, `
	; seed the two 16-word bignums
	ldiq  a0, biga
	ldiq  a1, bigb
	ldiq  t0, 16
	ldiq  t1, %#x
	ldiq  t2, 0x343FD
afill:
	mulq  t1, t2, t1
	addq  t1, #29, t1
	stq   t1, 0(a0)
	mulq  t1, t2, t1
	addq  t1, #31, t1
	stq   t1, 0(a1)
	lda   a0, 8(a0)
	lda   a1, 8(a1)
	subq  t0, #1, t0
	bne   t0, afill

	ldiq  s0, %d
aouter:
	; dispatch on low bits of an LCG
	ldiq  t2, 0x343FD
	mulq  s1, t2, s1
	addq  s1, #17, s1
	srl   s1, #9, t0
	and   t0, #3, t0
	ldiq  t1, atab
	s8addq t0, t1, t1
	ldq   t2, 0(t1)
	jmp   (t2)

aop0:
	; bignum add: a += b with carry propagation
	ldiq  a0, biga
	ldiq  a1, bigb
	ldiq  a2, 16
	clr   t5                 ; carry
aadd:
	ldq   t0, 0(a0)
	ldq   t1, 0(a1)
	addq  t0, t1, t2
	cmpult t2, t0, t3        ; carry out of a+b
	addq  t2, t5, t2
	cmpult t2, t5, t4
	bis   t3, t4, t5
	stq   t2, 0(a0)
	ldq   t0, 8(a0)
	ldq   t1, 8(a1)
	addq  t0, t1, t2
	cmpult t2, t0, t3
	addq  t2, t5, t2
	cmpult t2, t5, t4
	bis   t3, t4, t5
	stq   t2, 8(a0)
	lda   a0, 16(a0)
	lda   a1, 16(a1)
	subq  a2, #2, a2
	bne   a2, aadd
	br    ajoin

aop1:
	; scalar multiply pass over b
	ldiq  a1, bigb
	ldiq  a2, 16
amul:
	ldq   t0, 0(a1)
	mulq  t0, #3, t0
	addq  t0, #1, t0
	stq   t0, 0(a1)
	lda   a1, 8(a1)
	subq  a2, #1, a2
	bne   a2, amul
	br    ajoin

aop2:
	; shift-normalise a
	ldiq  a0, biga
	ldiq  a2, 16
anorm:
	ldq   t0, 0(a0)
	srl   t0, #1, t0
	stq   t0, 0(a0)
	lda   a0, 8(a0)
	subq  a2, #1, a2
	bne   a2, anorm
	br    ajoin

aop3:
	; checksum fold
	ldiq  a0, biga
	ldiq  a2, 16
	clr   t6
afold:
	ldq   t0, 0(a0)
	xor   t6, t0, t6
	lda   a0, 8(a0)
	subq  a2, #1, a2
	bne   a2, afold
	ldiq  t7, asink
	stq   t6, 0(t7)
	br    ajoin

ajoin:
	subq  s0, #1, s0
	bne   s0, aouter
	br    done
`, dataSeed(0x77654321, seed, 7), outer)
	b.WriteString(epilogue)
	b.WriteString(`
	.data 0x100000
biga:
	.space 128
bigb:
	.space 128
asink:
	.quad 0
	.align 8
atab:
	.quad aop0
	.quad aop1
	.quad aop2
	.quad aop3
`)
	return b.String()
}

// genEon builds the call-heavy rendering kernel: virtual method calls
// through per-object function pointers (JSR) and deep static BSR chains —
// return-prediction stress, like the C++ benchmark 252.eon.
func genEon(scale int, seed uint64) string {
	outer := 110 * scale
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, `
	; build 32 objects: {vtable-slot, x, y, z}
	ldiq  a0, objs
	clr   t0
	ldiq  t2, emtab
ebuild:
	and   t0, #15, t1
	cmplt t1, #3, t3
	cmoveq t3, zero, t1      ; only objects 0-2 of every 16 are polymorphic
	s8addq t1, t2, t1
	ldq   t1, 0(t1)
	stq   t1, 0(a0)          ; method pointer
	stq   t0, 8(a0)
	addq  t0, t0, t3
	stq   t3, 16(a0)
	stq   zero, 24(a0)
	lda   a0, 32(a0)
	addq  t0, #1, t0
	ldiq  t4, 32
	subq  t4, t0, t4
	bne   t4, ebuild

	ldiq  s0, %d
eouter:
	ldiq  s1, objs
	ldiq  s2, 32
eloop:
	ldq   pv, 0(s1)          ; virtual dispatch
	mov   s1, a0
	jsr   (pv)
	lda   s1, 32(s1)
	subq  s2, #1, s2
	bne   s2, eloop
	subq  s0, #1, s0
	bne   s0, eouter
	br    done

; --- methods: each updates its object and calls shared helpers ---
em0:
	stq   ra, -8(sp)
	lda   sp, -8(sp)
	ldq   t0, 8(a0)
	addq  t0, #1, t0
	stq   t0, 8(a0)
	bsr   enorm
	lda   sp, 8(sp)
	ldq   ra, -8(sp)
	ret
em1:
	stq   ra, -8(sp)
	lda   sp, -8(sp)
	ldq   t0, 16(a0)
	mulq  t0, #3, t0
	stq   t0, 16(a0)
	bsr   enorm
	lda   sp, 8(sp)
	ldq   ra, -8(sp)
	ret
em2:
	stq   ra, -8(sp)
	lda   sp, -8(sp)
	ldq   t0, 8(a0)
	ldq   t1, 16(a0)
	addq  t0, t1, t2
	stq   t2, 24(a0)
	bsr   edot
	lda   sp, 8(sp)
	ldq   ra, -8(sp)
	ret
em3:
	stq   ra, -8(sp)
	lda   sp, -8(sp)
	ldq   t0, 24(a0)
	srl   t0, #1, t0
	stq   t0, 24(a0)
	bsr   edot
	lda   sp, 8(sp)
	ldq   ra, -8(sp)
	ret

enorm:
	stq   ra, -8(sp)
	lda   sp, -8(sp)
	bsr   escale
	lda   sp, 8(sp)
	ldq   ra, -8(sp)
	ret

edot:
	stq   ra, -8(sp)
	lda   sp, -8(sp)
	bsr   escale
	bsr   escale
	lda   sp, 8(sp)
	ldq   ra, -8(sp)
	ret

escale:
	ldq   t3, 8(a0)
	sll   t3, #1, t4
	xor   t3, t4, t3
	srl   t3, #3, t4
	addq  t3, t4, t4
	and   t4, #127, t4
	addq  t3, t4, t3
	stq   t3, 8(a0)
	ret
`, outer)
	b.WriteString(epilogue)
	b.WriteString(`
	.data 0x100000
objs:
	.space 1024
	.align 8
emtab:
	.quad em0
	.quad em1
	.quad em2
	.quad em3
`)
	return b.String()
}

package workload

import "fmt"

// genMembomb is the hostile guest of the resource-governance tests
// (DESIGN.md §15): it strides a store across fresh 4 KiB pages, so every
// iteration grows the resident set by one page. Under vm.Config.MaxPages
// the first touch past the cap raises a precise *mem.ResourceFault trap;
// ungoverned, the bomb is bounded (512×scale pages) so differential
// harnesses can still run it to completion against the oracle. The
// stored values come from an LCG seeded by the data seed, and a read-back
// pass checksums every 64th page, so the memory image is data-dependent
// and any divergence is visible to mem.Equal.
func genMembomb(scale int, seed uint64) string {
	pages := 512 * scale
	return prologue + fmt.Sprintf(`
	; stride a store across %d fresh pages — one page per iteration
	ldiq  s0, %d
	ldiq  s1, 0x200000        ; page cursor
	ldiq  s2, %#x             ; LCG state (data seed)
	ldiq  t2, 0x343FD
bomb:
	mulq  s2, t2, s2
	addq  s2, #57, s2
	stq   s2, 0(s1)           ; first touch allocates the page
	lda   s1, 4096(s1)
	subq  s0, #1, s0
	bne   s0, bomb

	; read-back checksum over every 64th page
	ldiq  s0, %d
	ldiq  s1, 0x200000
	clr   v0
bsum:
	ldq   t0, 0(s1)
	addq  v0, t0, v0
	ldiq  t1, 0x40000         ; 64 pages
	addq  s1, t1, s1
	ldiq  t3, 64
	subq  s0, t3, s0
	bgt   s0, bsum
	ldiq  t4, bsink
	stq   v0, 0(t4)
	br    done
`, pages, pages, dataSeed(0x0B0B0B0B, seed, 13), pages) + epilogue + `
	.data 0x180000
bsink:
	.quad 0
`
}

// Package workload generates the twelve synthetic Alpha kernels that stand
// in for the SPEC CPU2000 integer benchmarks of the paper's evaluation.
//
// Real SPEC binaries compiled for Alpha EV6 are not available in this
// environment, so each kernel is constructed to stress the same mechanism
// its counterpart stresses in the paper: gzip's byte-stream strands, mcf's
// dependent pointer chasing, perlbmk's indirect-dispatch chaining load,
// eon's call/return depth, crafty's 64-bit logical chains, and so on. The
// evaluation cares about control-flow and dependence *shape* — branch mix,
// indirect-jump frequency, strand lengths, value "globalness" — not SPEC
// semantics, and those shapes are what the generators reproduce.
//
// All kernels are deterministic, self-contained (no input files), bounded,
// and end with the exit system call. The scale parameter multiplies the
// main loop trip counts so tests can run in milliseconds while benchmarks
// run long enough to amortise translation.
package workload

import (
	"fmt"
	"sort"

	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/alphaprog"
)

// Spec is one generated workload.
type Spec struct {
	Name        string
	Description string
	Source      string
}

// Program assembles the workload.
func (s *Spec) Program() (*alphaprog.Program, error) {
	p, err := alphaasm.Assemble(s.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return p, nil
}

// MustProgram assembles the workload, panicking on error (generator bugs).
func (s *Spec) MustProgram() *alphaprog.Program {
	p, err := s.Program()
	if err != nil {
		panic(err)
	}
	return p
}

type generator func(scale int, seed uint64) string

var generators = map[string]struct {
	gen  generator
	desc string
}{
	"bzip2":   {genBzip2, "block transform: array sort passes and run-length scans"},
	"crafty":  {genCrafty, "bitboard search: 64-bit logical strands and popcounts"},
	"eon":     {genEon, "call-heavy rendering kernel: deep BSR/RET chains and virtual calls"},
	"gap":     {genGap, "computer-algebra interpreter: bytecode dispatch and bignum adds"},
	"gcc":     {genGCC, "branchy compiler passes: many basic blocks and switch tables"},
	"gzip":    {genGzip, "LZ byte-stream compression: Fig. 2 style hash/checksum strands"},
	"mcf":     {genMCF, "network simplex: dependent pointer chasing over arc lists"},
	"parser":  {genParser, "dictionary lookup: hashing and string-compare loops"},
	"perlbmk": {genPerlbmk, "interpreter dispatch: dominant indirect jumps through an op table"},
	"twolf":   {genTwolf, "place-and-route annealing: array indexing, multiplies, cmovs"},
	"vortex":  {genVortex, "OO database: object field traffic and call chains"},
	"vpr":     {genVPR, "FPGA routing: grid walks with data-dependent branches"},
}

// adversarial holds hostile guests used by the hardening tests and CI
// smokes (DESIGN.md §15). They resolve through ByName/ByNameSeeded like
// any benchmark but are deliberately excluded from Names()/All(): they
// are attack tools, not SPEC stand-ins, and must not perturb Table-2
// sweeps or the generated experiment reports.
var adversarial = map[string]struct {
	gen  generator
	desc string
}{
	"membomb": {genMembomb, "memory bomb: strides a store across fresh pages until governed"},
}

// Names returns all workload names in SPEC order (alphabetical, as in
// Table 2). Adversarial guests (membomb) are excluded; see ByName.
func Names() []string {
	out := make([]string, 0, len(generators))
	for name := range generators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName generates one workload with the canonical data seed.
func ByName(name string, scale int) (*Spec, error) {
	return ByNameSeeded(name, scale, 0)
}

// ByNameSeeded generates one workload with a perturbed data seed: the
// program structure is identical, but the pseudo-random fills (and so the
// data-dependent branch and hash behaviour) differ. Seed 0 is the
// canonical dataset used in EXPERIMENTS.md.
func ByNameSeeded(name string, scale int, seed uint64) (*Spec, error) {
	g, ok := generators[name]
	if !ok {
		g, ok = adversarial[name]
	}
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	if scale <= 0 {
		scale = 1
	}
	return &Spec{Name: name, Description: g.desc, Source: g.gen(scale, seed)}, nil
}

// All generates every workload at the given scale (canonical seed).
func All(scale int) []*Spec { return AllSeeded(scale, 0) }

// AllSeeded generates every workload with the given data seed.
func AllSeeded(scale int, seed uint64) []*Spec {
	var out []*Spec
	for _, name := range Names() {
		s, err := ByNameSeeded(name, scale, seed)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// dataSeed derives a 28-bit fill constant for a generator: seed 0 returns
// the canonical value; other seeds mix it so runs explore different data.
func dataSeed(canonical int64, seed uint64, salt uint64) int64 {
	if seed == 0 {
		return canonical
	}
	x := seed*0x9E3779B97F4A7C15 + salt*0xBF58476D1CE4E5B9 + uint64(canonical)
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	x ^= x >> 32
	return int64(x&0x0FFFFFFF) | 1
}

// prologue establishes the stack and jumps to main code; epilogue exits.
const prologue = `
	.text 0x10000
	.entry start
start:
	ldiq  sp, 0x7ff000
`

const epilogue = `
done:
	lda   v0, 1(zero)
	clr   a0
	call_pal callsys
`

// quads renders a .quad data table.
func quads(vals []uint64) string {
	out := ""
	for i, v := range vals {
		if i%4 == 0 {
			if i > 0 {
				out += "\n"
			}
			out += "\t.quad "
		} else {
			out += ", "
		}
		out += fmt.Sprintf("%#x", v)
	}
	return out + "\n"
}

// lcg is the deterministic pseudo-random source used by the generators.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

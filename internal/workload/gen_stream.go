package workload

import "fmt"

// genGzip builds the LZ-style byte-stream kernel: the paper's Fig. 2
// strand shape — byte load, checksum xor/shift chain, hash-table load and
// update — over a pseudo-random buffer.
func genGzip(scale int, seed uint64) string {
	outer := 24 * scale
	return prologue + fmt.Sprintf(`
	; fill the input buffer with LCG bytes
	ldiq  a0, buf
	ldiq  t0, 1024
	ldiq  t1, %#x
	ldiq  t2, 0x41C64E6D
fill:
	mulq  t1, t2, t1
	addq  t1, #45, t1
	srl   t1, #7, t3
	stb   t3, 0(a0)
	lda   a0, 1(a0)
	subq  t0, #1, t0
	bne   t0, fill

	ldiq  s0, %d
outer:
	ldiq  a0, buf
	ldiq  a1, 1024
	clr   t0
	ldiq  a3, hashtab
inner:
	ldbu  t2, 0(a0)
	xor   t0, t2, t2
	srl   t0, #8, t0
	and   t2, #255, t2
	s8addq t2, a3, t3
	ldq   t4, 0(t3)
	addq  t4, #1, t4
	stq   t4, 0(t3)
	xor   t4, t0, t0
	ldbu  t2, 1(a0)
	xor   t0, t2, t2
	srl   t0, #8, t0
	and   t2, #255, t2
	s8addq t2, a3, t3
	ldq   t4, 0(t3)
	addq  t4, #1, t4
	stq   t4, 0(t3)
	xor   t4, t0, t0
	ldbu  t2, 2(a0)
	xor   t0, t2, t2
	srl   t0, #8, t0
	and   t2, #255, t2
	s8addq t2, a3, t3
	ldq   t4, 0(t3)
	addq  t4, #1, t4
	stq   t4, 0(t3)
	xor   t4, t0, t0
	ldbu  t2, 3(a0)
	xor   t0, t2, t2
	srl   t0, #8, t0
	and   t2, #255, t2
	s8addq t2, a3, t3
	ldq   t4, 0(t3)
	addq  t4, #1, t4
	stq   t4, 0(t3)
	xor   t4, t0, t0
	lda   a0, 4(a0)
	subl  a1, #4, a1
	bne   a1, inner
	subq  s0, #1, s0
	bne   s0, outer
	br    done
`, dataSeed(0x12345678, seed, 1), outer) + epilogue + `
	.data 0x100000
hashtab:
	.space 2048
buf:
	.space 1024
`
}

// genBzip2 builds the block-transform kernel: repeated compare-and-swap
// passes over an array (sorting phase) and run-length scans.
func genBzip2(scale int, seed uint64) string {
	outer := 20 * scale
	return prologue + fmt.Sprintf(`
	; fill the work array
	ldiq  a0, arr
	ldiq  t0, 256
	ldiq  t1, %#x
	ldiq  t2, 0x343FD
bfill:
	mulq  t1, t2, t1
	addq  t1, #43, t1
	stq   t1, 0(a0)
	lda   a0, 8(a0)
	subq  t0, #1, t0
	bne   t0, bfill

	ldiq  s0, %d
outer:
	; one compare-and-swap pass
	ldiq  a0, arr
	ldiq  a1, 127
pass:
	ldq   t0, 0(a0)
	ldq   t1, 8(a0)
	cmple t0, t1, t2
	bne   t2, noswap
	stq   t1, 0(a0)
	stq   t0, 8(a0)
noswap:
	ldq   t0, 8(a0)
	ldq   t1, 16(a0)
	cmple t0, t1, t2
	bne   t2, noswap2
	stq   t1, 8(a0)
	stq   t0, 16(a0)
noswap2:
	lda   a0, 16(a0)
	subq  a1, #1, a1
	bne   a1, pass
	; run-length scan of low bytes
	ldiq  a0, arr
	ldiq  a1, 256
	clr   t5
	clr   t6
scan:
	ldq   t0, 0(a0)
	and   t0, #255, t0
	cmpeq t0, t6, t2
	addq  t5, t2, t5
	mov   t0, t6
	ldq   t0, 8(a0)
	and   t0, #255, t0
	cmpeq t0, t6, t2
	addq  t5, t2, t5
	mov   t0, t6
	lda   a0, 16(a0)
	subq  a1, #2, a1
	bne   a1, scan
	; keep the result live
	ldiq  t7, sink
	stq   t5, 0(t7)
	subq  s0, #1, s0
	bne   s0, outer
	br    done
`, dataSeed(0x2545F491, seed, 2), outer) + epilogue + `
	.data 0x100000
arr:
	.space 2048
sink:
	.quad 0
`
}

// genCrafty builds the bitboard kernel: long 64-bit logical strands with
// bit-trick population counts — pure dependent ALU chains.
func genCrafty(scale int, seed uint64) string {
	outer := 40 * scale
	return prologue + fmt.Sprintf(`
	; 64-bit popcount masks (built from 32-bit halves)
	ldiq  s3, 0x55555555
	sll   s3, #32, t0
	bis   s3, t0, s3
	ldiq  s4, 0x33333333
	sll   s4, #32, t0
	bis   s4, t0, s4
	ldiq  s5, 0x0F0F0F0F
	sll   s5, #32, t0
	bis   s5, t0, s5
	ldiq  t9, 0x01010101
	sll   t9, #32, t0
	bis   t9, t0, t9

	; fill the board table
	ldiq  a0, boards
	ldiq  t0, 128
	ldiq  t1, %#x
	ldiq  t2, 0x45D9F3B
cfill:
	mulq  t1, t2, t1
	addq  t1, #77, t1
	stq   t1, 0(a0)
	lda   a0, 8(a0)
	subq  t0, #1, t0
	bne   t0, cfill

	ldiq  s0, %d
outer:
	ldiq  a0, boards
	ldiq  a1, 128
	clr   v0
bloop:
	ldq   t0, 0(a0)
	; attack-set style mask chain
	sll   t0, #9, t1
	srl   t0, #7, t2
	xor   t1, t2, t1
	and   t1, s3, t2
	bic   t0, t2, t0
	zapnot t0, #85, t3
	eqv   t0, t3, t0
	; popcount(t0)
	srl   t0, #1, t4
	and   t4, s3, t4
	subq  t0, t4, t0
	srl   t0, #2, t4
	and   t4, s4, t4
	and   t0, s4, t0
	addq  t0, t4, t0
	srl   t0, #4, t4
	addq  t0, t4, t0
	and   t0, s5, t0
	mulq  t0, t9, t0
	srl   t0, #56, t0
	addq  v0, t0, v0
	lda   a0, 8(a0)
	subq  a1, #1, a1
	bne   a1, bloop
	ldiq  t7, csink
	stq   v0, 0(t7)
	subq  s0, #1, s0
	bne   s0, outer
	br    done
`, dataSeed(0x1E3779B9, seed, 3), outer) + epilogue + `
	.data 0x100000
boards:
	.space 1024
csink:
	.quad 0
`
}

// genMCF builds the network-simplex kernel: dependent pointer chasing
// through a pseudo-randomly permuted 32KB node pool — load-latency bound
// strands, exactly mcf's signature.
func genMCF(scale int, seed uint64) string {
	outer := 6 * scale
	return prologue + fmt.Sprintf(`
	; build the permutation: node[i].next = &node[(i*40503) & 1023]
	ldiq  a0, nodes
	clr   t0                 ; i
	ldiq  t1, %d
	ldiq  a3, nodes
mbuild:
	mulq  t0, t1, t2
	ldiq  t3, 1023
	and   t2, t3, t2
	sll   t2, #5, t2         ; *32 bytes
	addq  a3, t2, t2
	stq   t2, 0(a0)          ; next pointer
	stq   t0, 8(a0)          ; cost
	stq   zero, 16(a0)       ; flow
	lda   a0, 32(a0)
	addq  t0, #1, t0
	ldiq  t4, 1024
	subq  t4, t0, t4
	bne   t4, mbuild

	ldiq  s0, %d
outer:
	ldiq  a0, nodes          ; p
	ldiq  a1, 2048           ; hops
	clr   v0
chase:
	ldq   t1, 8(a0)
	addq  v0, t1, v0
	ldq   t2, 16(a0)
	addq  t2, #1, t2
	stq   t2, 16(a0)
	ldq   a0, 0(a0)
	ldq   t1, 8(a0)
	addq  v0, t1, v0
	ldq   t2, 16(a0)
	addq  t2, #1, t2
	stq   t2, 16(a0)
	ldq   a0, 0(a0)
	ldq   t1, 8(a0)
	addq  v0, t1, v0
	ldq   t2, 16(a0)
	addq  t2, #1, t2
	stq   t2, 16(a0)
	ldq   a0, 0(a0)
	ldq   t1, 8(a0)
	addq  v0, t1, v0
	ldq   t2, 16(a0)
	addq  t2, #1, t2
	stq   t2, 16(a0)
	ldq   a0, 0(a0)
	subq  a1, #4, a1
	bne   a1, chase
	ldiq  t7, msink
	stq   v0, 0(t7)
	subq  s0, #1, s0
	bne   s0, outer
	br    done
`, dataSeed(40503, seed, 4)|1, outer) + epilogue + `
	.data 0x100000
nodes:
	.space 32768
msink:
	.quad 0
`
}

package translate

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// nodeKind classifies dependence-graph nodes after decomposition.
type nodeKind uint8

const (
	nkALU      nodeKind = iota // arithmetic/logical, incl. decomposed address adds
	nkCMOVTest                 // temp <- condition register (first half of a CMOV)
	nkCMOVSel                  // conditional select (second half of a CMOV)
	nkLoad
	nkStore
	nkCondBranch // conditional branch (side exit or fragment-ending)
	nkIndirect   // register-indirect jump ending the fragment
	nkSaveVRA    // save-V-ISA-return-address (from BSR/JSR)
)

// srcKind classifies node operands before accumulator mapping.
type srcKind uint8

const (
	srcNone srcKind = iota
	srcReg          // architected register, defined by node `def` or live-in (-1)
	srcImm
	srcTemp // decomposition temporary produced by node `def`
)

type nsrc struct {
	kind srcKind
	reg  alpha.Reg
	imm  int64
	def  int // producing node index; -1 for live-in registers
}

// indKind distinguishes indirect jump flavours for chaining.
type indKind uint8

const (
	indNone indKind = iota
	indJump         // JMP / JSR_COROUTINE
	indCall         // JSR (pushes return address)
	indRet          // RET
)

type node struct {
	vpc  uint64
	kind nodeKind
	op   alpha.Op
	srcs [2]nsrc

	dest   alpha.Reg // architected output register; RegZero if none
	isTemp bool      // output is a decomposition temporary
	// phantomDef is the node index of the previous definition of a
	// conditional move's destination (the old value it reads without an
	// acc-chainable operand slot), or -1.
	phantomDef int

	maskAddr bool  // LDQ_U/STQ_U: clear low 3 address bits
	disp     int32 // fused memory displacement (FuseMemOps)

	// Control.
	vtarget  uint64 // cond branch taken-target (post-reversal) / indirect predicted target
	endsFrag bool   // final backward branch or indirect jump
	ind      indKind
	saveAddr uint64 // nkSaveVRA: the V-ISA return address value

	isPEI bool

	vcredit int // V-ISA instructions retired by this node's primary emission

	// Analysis results.
	uses     int  // register reads of this node's output before overwrite
	chainUse int  // node index of the single acc-chained consumer, -1
	liveOut  bool // value reaches a superblock exit / fragment end
	exitPEI  bool // an exit or PEI occurs while this value is current
	spilled  bool // forced global by the two-local-input rule
	usage    ildp.UsageClass
	strand   int // strand id; -1 before assignment
}

// output reports whether the node produces a register value.
func (n *node) output() bool {
	switch n.kind {
	case nkALU, nkCMOVTest, nkCMOVSel, nkLoad, nkSaveVRA:
		return true
	}
	return false
}

func regSrc(r alpha.Reg, def int) nsrc { return nsrc{kind: srcReg, reg: r, def: def} }
func immSrc(v int64) nsrc              { return nsrc{kind: srcImm, imm: v} }
func tempSrc(def int) nsrc             { return nsrc{kind: srcTemp, def: def} }

// decompose converts the superblock's Alpha instructions into dependence
// nodes: NOPs are removed, straightened direct branches are removed (their
// retirement credit attaches to the following node), memory operations with
// a non-zero displacement split into an address node plus an access node,
// and conditional moves split into a test and a select node (§3.3).
func (t *xlat) decompose() error {
	for i := range t.lastDef {
		t.lastDef[i] = -1
	}
	pendingCredit := 0

	addNode := func(n node) int {
		n.chainUse = -1
		n.strand = -1
		if n.kind != nkCMOVSel {
			n.phantomDef = -1
		}
		n.vcredit += pendingCredit
		pendingCredit = 0
		t.nodes = append(t.nodes, n)
		idx := len(t.nodes) - 1
		if n.output() && !n.isTemp && n.dest != alpha.RegZero {
			t.lastDef[n.dest] = idx
		}
		t.cost.charge(costDecomposeNode)
		return idx
	}
	// regRef builds a register operand referencing its superblock def.
	regRef := func(r alpha.Reg) nsrc {
		if r == alpha.RegZero {
			return immSrc(0)
		}
		return regSrc(r, t.lastDef[r])
	}

	for si := range t.sb.Insts {
		rec := &t.sb.Insts[si]
		inst := rec.Inst
		last := si == len(t.sb.Insts)-1
		t.res.SrcBytes += alpha.InstBytes
		t.cost.charge(costDecodeInst)

		if inst.IsNOP() {
			t.res.NOPCount++
			continue
		}
		t.res.SrcCount++

		switch {
		case inst.Op == alpha.OpLDA || inst.Op == alpha.OpLDAH:
			imm := int64(inst.Disp)
			if inst.Op == alpha.OpLDAH {
				imm <<= 16
			}
			addNode(node{
				vpc: rec.PC, kind: nkALU, op: alpha.OpLDA,
				srcs: [2]nsrc{regRef(inst.Rb), immSrc(imm)},
				dest: inst.Ra, vcredit: 1,
			})

		case inst.Format == alpha.FormatOperate && inst.IsCMOV():
			// Split into a test (temp) and a conditional select whose
			// output is always a GPR write (see package ildp docs).
			test := addNode(node{
				vpc: rec.PC, kind: nkCMOVTest, op: inst.Op,
				srcs:   [2]nsrc{regRef(inst.Ra)},
				isTemp: true, dest: alpha.RegZero,
			})
			sel := node{
				vpc: rec.PC, kind: nkCMOVSel, op: inst.Op,
				srcs:       [2]nsrc{tempSrc(test)},
				dest:       inst.Rc,
				phantomDef: t.lastDef[inst.Rc],
				vcredit:    1,
			}
			if inst.UseLit {
				sel.srcs[1] = immSrc(int64(inst.Lit))
			} else {
				sel.srcs[1] = regRef(inst.Rb)
			}
			addNode(sel)

		case inst.Format == alpha.FormatOperate:
			n := node{
				vpc: rec.PC, kind: nkALU, op: inst.Op,
				dest: inst.Rc, vcredit: 1,
			}
			n.srcs[0] = regRef(inst.Ra)
			if inst.UseLit {
				n.srcs[1] = immSrc(int64(inst.Lit))
			} else {
				n.srcs[1] = regRef(inst.Rb)
			}
			addNode(n)

		case inst.IsLoad():
			addr, disp := t.addrOperand(rec, regRef)
			n := node{
				vpc: rec.PC, kind: nkLoad, op: inst.Op,
				srcs: [2]nsrc{addr}, dest: inst.Ra, disp: disp,
				maskAddr: inst.Op == alpha.OpLDQU || inst.Op == alpha.OpLDLL || inst.Op == alpha.OpLDQL,
				isPEI:    true, vcredit: 1,
			}
			// LDx_L: treat as a plain load on this uniprocessor.
			addNode(n)

		case inst.IsStore():
			addr, disp := t.addrOperand(rec, regRef)
			n := node{
				vpc: rec.PC, kind: nkStore, op: inst.Op,
				srcs: [2]nsrc{addr, regRef(inst.Ra)},
				dest: alpha.RegZero, disp: disp,
				maskAddr: inst.Op == alpha.OpSTQU,
				isPEI:    true, vcredit: 1,
			}
			addNode(n)
			if inst.Op == alpha.OpSTLC || inst.Op == alpha.OpSTQC {
				// Store-conditional succeeds on this uniprocessor model:
				// materialise the success flag.
				addNode(node{
					vpc: rec.PC, kind: nkALU, op: alpha.OpBIS,
					srcs: [2]nsrc{immSrc(0), immSrc(1)},
					dest: inst.Ra,
				})
			}

		case inst.IsCondBranch():
			op := inst.Op
			exitTarget := inst.BranchTarget(rec.PC)
			if last && t.sb.End == EndBackward {
				// Fragment-ending backward taken branch: keep the original
				// condition; the taken target is the hot continuation.
				addNode(node{
					vpc: rec.PC, kind: nkCondBranch, op: op,
					srcs:     [2]nsrc{regRef(inst.Ra)},
					dest:     alpha.RegZero,
					vtarget:  exitTarget,
					endsFrag: true,
					vcredit:  1,
				})
				break
			}
			if rec.Taken {
				// Reverse the condition so the hot path falls through;
				// the side exit targets the fall-through path.
				rop, err := reverseCond(op)
				if err != nil {
					return err
				}
				op = rop
				exitTarget = rec.PC + alpha.InstBytes
			}
			addNode(node{
				vpc: rec.PC, kind: nkCondBranch, op: op,
				srcs:    [2]nsrc{regRef(inst.Ra)},
				dest:    alpha.RegZero,
				vtarget: exitTarget,
				vcredit: 1,
			})

		case inst.Op == alpha.OpBR:
			if inst.Ra == alpha.RegZero {
				// Removed by code straightening; credit moves forward.
				pendingCredit++
				t.res.BranchElims++
			} else {
				// br rX, target: saves the return address like BSR.
				addNode(node{
					vpc: rec.PC, kind: nkSaveVRA,
					dest: inst.Ra, saveAddr: rec.PC + alpha.InstBytes,
					vcredit: 1,
				})
			}

		case inst.Op == alpha.OpBSR:
			addNode(node{
				vpc: rec.PC, kind: nkSaveVRA,
				dest: inst.Ra, saveAddr: rec.PC + alpha.InstBytes,
				vcredit: 1,
			})

		case inst.IsIndirect():
			kind := indJump
			switch inst.Op {
			case alpha.OpJSR, alpha.OpJSRCoroutine:
				kind = indCall
			case alpha.OpRET:
				kind = indRet
			}
			// Every memory-format jump writes its link register. The
			// translated code reads the target from the register file
			// after the link write, so a jump whose target register is
			// its own link register cannot be expressed; degrade to a
			// recoverable translation failure.
			if inst.Ra != alpha.RegZero && inst.Ra == inst.Rb {
				return fmt.Errorf("%w: %v with link == target register at %#x",
					ErrUnsupported, inst.Op, rec.PC)
			}
			if inst.Ra != alpha.RegZero {
				addNode(node{
					vpc: rec.PC, kind: nkSaveVRA,
					dest: inst.Ra, saveAddr: rec.PC + alpha.InstBytes,
					vcredit: 1,
				})
			}
			n := node{
				vpc: rec.PC, kind: nkIndirect, op: inst.Op,
				srcs:     [2]nsrc{regRef(inst.Rb)},
				dest:     alpha.RegZero,
				vtarget:  rec.PredTarget,
				endsFrag: true,
				ind:      kind,
			}
			if inst.Ra == alpha.RegZero {
				n.vcredit = 1
			}
			addNode(n)

		case inst.Op == alpha.OpTRAPB || inst.Op == alpha.OpEXCB ||
			inst.Op == alpha.OpMB || inst.Op == alpha.OpWMB:
			// Barriers are NOPs on this model (already filtered by IsNOP,
			// but keep the case for clarity).
			t.res.SrcCount--
			t.res.NOPCount++

		default:
			return fmt.Errorf("%w: %v at %#x", ErrUnsupported, inst.Op, rec.PC)
		}
	}
	if pendingCredit > 0 && len(t.nodes) > 0 {
		// Trailing removed branch: credit attaches to the fragment's exit
		// branch, which the emitter appends; stash it on the last node.
		t.nodes[len(t.nodes)-1].vcredit += pendingCredit
	}
	if len(t.nodes) == 0 {
		return ErrEmptySuperblock
	}
	return nil
}

// addrOperand returns the address operand for a memory access, emitting an
// address-computation node when the displacement is non-zero (the basic
// I-ISA performs no address arithmetic in memory instructions; under
// FuseMemOps the displacement stays in the instruction).
func (t *xlat) addrOperand(rec *SBInst, regRef func(alpha.Reg) nsrc) (nsrc, int32) {
	inst := rec.Inst
	if inst.Disp == 0 || t.cfg.FuseMemOps {
		return regRef(inst.Rb), inst.Disp
	}
	idx := len(t.nodes)
	n := node{
		vpc: rec.PC, kind: nkALU, op: alpha.OpLDA,
		srcs:   [2]nsrc{regRef(inst.Rb), immSrc(int64(inst.Disp))},
		isTemp: true, dest: alpha.RegZero,
		chainUse: -1, strand: -1,
	}
	t.nodes = append(t.nodes, n)
	t.cost.charge(costDecomposeNode)
	return tempSrc(idx), 0
}

// reverseCond returns the opposite branch condition, or an ErrUnsupported
// error when op is not a conditional branch — a malformed superblock then
// degrades to a recoverable translation failure instead of a panic.
func reverseCond(op alpha.Op) (alpha.Op, error) {
	switch op {
	case alpha.OpBEQ:
		return alpha.OpBNE, nil
	case alpha.OpBNE:
		return alpha.OpBEQ, nil
	case alpha.OpBLT:
		return alpha.OpBGE, nil
	case alpha.OpBGE:
		return alpha.OpBLT, nil
	case alpha.OpBLE:
		return alpha.OpBGT, nil
	case alpha.OpBGT:
		return alpha.OpBLE, nil
	case alpha.OpBLBC:
		return alpha.OpBLBS, nil
	case alpha.OpBLBS:
		return alpha.OpBLBC, nil
	}
	return op, fmt.Errorf("%w: cannot reverse non-conditional %v", ErrUnsupported, op)
}

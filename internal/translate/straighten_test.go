package translate

import (
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

func TestStraightenOneToOne(t *testing.T) {
	sb := fig2SB(t)
	res, err := Straighten(sb, SWPredRAS)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Straightened {
		t.Error("flag missing")
	}
	// set-vpc + 10 source instructions + trailing branch = 12 (loads keep
	// their displacements, so no decomposition).
	if len(res.Insts) != 12 {
		for i := range res.Insts {
			t.Logf("%2d: %s", i, res.Insts[i].String())
		}
		t.Fatalf("got %d instructions, want 12", len(res.Insts))
	}
	if res.CopyCount != 0 {
		t.Errorf("straightened code has %d copies", res.CopyCount)
	}
	// Loads keep displacements.
	for i := range res.Insts {
		inst := &res.Insts[i]
		if inst.Kind == ildp.KindLoad && inst.VPC == sb.Insts[7].PC {
			if inst.Disp != 0 {
				// ldq t2, 0(t2): displacement 0 here; the gzip loop's
				// byte load at ldbu also has 0. Use a different check.
				t.Errorf("unexpected displacement %d", inst.Disp)
			}
		}
	}
	// V-credit conservation.
	credit := 0
	for i := range res.Insts {
		credit += int(res.Insts[i].VCredit)
	}
	if credit != res.SrcCount {
		t.Errorf("credit %d != src %d", credit, res.SrcCount)
	}
	// Every instruction is 4 bytes (Alpha-sized).
	if res.CodeBytes != len(res.Insts)*alpha.InstBytes {
		t.Errorf("code bytes %d for %d insts", res.CodeBytes, len(res.Insts))
	}
}

func TestStraightenKeepsDisplacements(t *testing.T) {
	sb := sbFromAsm(t, `
	.text 0x1000
	ldq  t0, 24(a0)
	stq  t0, 32(a1)
	ret
`, 0x1000, EndIndirect, 0)
	res, err := Straighten(sb, SWPredRAS)
	if err != nil {
		t.Fatal(err)
	}
	var sawLoad, sawStore bool
	for i := range res.Insts {
		inst := &res.Insts[i]
		switch inst.Kind {
		case ildp.KindLoad:
			sawLoad = true
			if inst.Disp != 24 {
				t.Errorf("load disp = %d", inst.Disp)
			}
		case ildp.KindStore:
			sawStore = true
			if inst.Disp != 32 {
				t.Errorf("store disp = %d", inst.Disp)
			}
		}
	}
	if !sawLoad || !sawStore {
		t.Error("memory instructions missing")
	}
}

func TestStraightenChainModes(t *testing.T) {
	src := `
	.text 0x1000
	addq a0, #1, v0
	jsr (pv)
`
	sb := sbFromAsm(t, src, 0x1000, EndIndirect, 0)
	noPred, err := Straighten(sb, NoPred)
	if err != nil {
		t.Fatal(err)
	}
	swPred, err := Straighten(sb, SWPred)
	if err != nil {
		t.Fatal(err)
	}
	// no_pred: latch + branch-to-dispatch; sw_pred adds the 4-instruction
	// embedded-compare sequence.
	if len(swPred.Insts) <= len(noPred.Insts) {
		t.Errorf("sw_pred (%d) should be longer than no_pred (%d)",
			len(swPred.Insts), len(noPred.Insts))
	}
	var eta int
	for i := range swPred.Insts {
		if swPred.Insts[i].Kind == ildp.KindLoadETA {
			eta++
		}
	}
	if eta != 1 {
		t.Errorf("sw_pred straightened chain has %d load-ETA", eta)
	}
}

func TestStraightenRemovedBranchCredit(t *testing.T) {
	sb := sbFromAsm(t, `
	.text 0x1000
	addq a0, #1, v0
	br   next
next:
	subq v0, #1, v0
	ret
`, 0x1000, EndIndirect, 0)
	// Collection follows the br; the recorded trace includes it.
	res, err := Straighten(sb, SWPredRAS)
	if err != nil {
		t.Fatal(err)
	}
	if res.BranchElims != 1 {
		t.Errorf("BranchElims = %d", res.BranchElims)
	}
	credit := 0
	for i := range res.Insts {
		credit += int(res.Insts[i].VCredit)
	}
	if credit != res.SrcCount {
		t.Errorf("credit %d != src %d (removed branch credit lost)", credit, res.SrcCount)
	}
}

func TestStraightenEmpty(t *testing.T) {
	if _, err := Straighten(&Superblock{}, SWPredRAS); err == nil {
		t.Error("empty superblock accepted")
	}
}

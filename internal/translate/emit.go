package translate

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// emit lowers the analysed nodes to I-ISA instructions: the set-VPC
// prologue, per-node translation with copy-from-GPR repairs and Basic-form
// copy-to-GPR state maintenance, and the fragment-ending chaining code.
func (t *xlat) emit() error {
	t.scratchNext = ildp.ScratchBase
	t.push(ildp.Inst{
		Kind: ildp.KindSetVPC, VAddr: t.sb.StartPC,
		Acc: ildp.NoAcc, Dest: alpha.RegZero, Class: ildp.ClassSpecial,
	}, -1)

	for i := range t.nodes {
		nd := &t.nodes[i]
		t.cost.charge(costEmitNode)
		switch nd.kind {
		case nkALU, nkCMOVTest:
			t.emitALU(i, nd)
		case nkCMOVSel:
			t.emitCMOVSel(i, nd)
		case nkLoad:
			t.emitLoad(i, nd)
		case nkStore:
			t.emitStore(i, nd)
		case nkCondBranch:
			t.emitCondBranch(i, nd)
		case nkSaveVRA:
			t.emitSaveVRA(nd)
		case nkIndirect:
			t.emitIndirect(i, nd)
		default:
			return fmt.Errorf("translate: cannot emit node kind %d", nd.kind)
		}
	}

	// Non-indirect fragment endings exit to the VM at the continuation
	// address (the "combination of a conditional branch and an
	// unconditional branch" of §2.1 for backward-branch endings).
	if t.sb.End != EndIndirect {
		t.push(ildp.Inst{
			Kind: ildp.KindCallTrans, VAddr: t.sb.NextPC,
			Acc: ildp.NoAcc, Dest: alpha.RegZero, Frag: ildp.NoFrag,
			Class: ildp.ClassChain,
		}, -1)
		t.res.ChainCount++
	}
	return nil
}

// push appends an instruction with its strand annotation. Accumulators are
// assigned later from the strand annotations; non-control instructions
// carry no fragment link.
func (t *xlat) push(inst ildp.Inst, strand int) {
	inst.Acc = ildp.NoAcc
	if !inst.ProducesResult() {
		inst.ArchDest = alpha.RegZero
	}
	if !inst.IsControl() {
		inst.Frag = ildp.NoFrag
	}
	t.out = append(t.out, inst)
	t.strandOf = append(t.strandOf, strand)
}

// operand converts a node source into an I-ISA source, deciding between
// the accumulator chain and a GPR read.
func (t *xlat) operand(nodeIdx int, src nsrc) ildp.Src {
	switch src.kind {
	case srcImm:
		return ildp.ImmSrc(src.imm)
	case srcTemp:
		return ildp.AccSrc()
	case srcReg:
		if src.def >= 0 && t.nodes[src.def].chainUse == nodeIdx {
			return ildp.AccSrc()
		}
		return ildp.GPRSrc(src.reg)
	}
	return ildp.Src{Kind: ildp.SrcNone}
}

// repairTwoGPRs enforces the one-GPR rule: when both operands are GPRs, a
// copy-from-GPR initiates the strand with the first operand (§3.3 strand
// formation, zero-local-input case).
func (t *xlat) repairTwoGPRs(nd *node, a, b ildp.Src) (ildp.Src, ildp.Src) {
	if a.Kind != ildp.SrcGPR || b.Kind != ildp.SrcGPR ||
		a.Reg == alpha.RegZero || b.Reg == alpha.RegZero {
		return a, b
	}
	if nd.strand < 0 {
		nd.strand = t.nextStrand
		t.nextStrand++
	}
	t.push(ildp.Inst{
		Kind: ildp.KindCopyFromGPR, SrcA: a, WritesAcc: true,
		Dest: alpha.RegZero, ArchDest: alpha.RegZero,
		VPC: nd.vpc, Class: ildp.ClassCopy,
	}, nd.strand)
	t.res.CopyCount++
	t.cost.charge(costEmitInst)
	return ildp.AccSrc(), b
}

// destFor returns the architected destination GPR carried by the
// instruction under the configured form.
func (t *xlat) destFor(nd *node) alpha.Reg {
	if t.cfg.Form == ildp.Modified && !nd.isTemp && nd.dest != alpha.RegZero {
		return nd.dest
	}
	return alpha.RegZero
}

// maybeStateCopy emits the Basic-form copy-to-GPR that maintains
// architected state for global values (§2.2).
func (t *xlat) maybeStateCopy(nd *node) {
	if t.cfg.Form != ildp.Basic || nd.isTemp || nd.dest == alpha.RegZero {
		return
	}
	if !needsGPRHome(nd.usage) {
		return
	}
	t.push(ildp.Inst{
		Kind: ildp.KindCopyToGPR, Acc: ildp.NoAcc, Dest: nd.dest,
		VPC: nd.vpc, Class: ildp.ClassCopy, Usage: ildp.UsageNone,
	}, nd.strand)
	t.res.CopyCount++
	t.cost.charge(costEmitInst)
}

func (t *xlat) emitALU(i int, nd *node) {
	a := t.operand(i, nd.srcs[0])
	b := t.operand(i, nd.srcs[1])
	a, b = t.repairTwoGPRs(nd, a, b)
	op := nd.op
	if nd.kind == nkCMOVTest {
		// The test half copies the condition value into the temp
		// accumulator: a | 0.
		op = alpha.OpBIS
		b = ildp.ImmSrc(0)
	}
	class := ildp.ClassCore
	if nd.isTemp && nd.kind != nkCMOVTest {
		class = ildp.ClassAddr
	}
	t.push(ildp.Inst{
		Kind: ildp.KindALU, Op: op, SrcA: a, SrcB: b,
		WritesAcc: true, Dest: t.destFor(nd), ArchDest: archDestOf(nd),
		VPC: nd.vpc, Class: class,
		VCredit: uint8(nd.vcredit), Usage: nd.usage,
	}, nd.strand)
	t.cost.charge(costEmitInst)
	t.maybeStateCopy(nd)
}

func (t *xlat) emitCMOVSel(i int, nd *node) {
	// The select reads the condition from the temp accumulator and
	// conditionally publishes SrcB to the destination GPR (both forms).
	b := t.operand(i, nd.srcs[1])
	t.push(ildp.Inst{
		Kind: ildp.KindCMOV, Op: nd.op, SrcA: ildp.Src{Kind: ildp.SrcNone}, SrcB: b,
		Dest: nd.dest, ArchDest: nd.dest, VPC: nd.vpc, Class: ildp.ClassCore,
		VCredit: uint8(nd.vcredit), Usage: nd.usage,
	}, nd.strand)
	t.cost.charge(costEmitInst)
}

func (t *xlat) emitLoad(i int, nd *node) {
	addr := t.operand(i, nd.srcs[0])
	t.push(ildp.Inst{
		Kind: ildp.KindLoad, Op: nd.op, SrcA: addr, Disp: nd.disp,
		WritesAcc: true, Dest: t.destFor(nd), ArchDest: archDestOf(nd),
		VPC: nd.vpc, Class: ildp.ClassCore,
		VCredit: uint8(nd.vcredit), Usage: nd.usage,
	}, nd.strand)
	t.res.PEI = append(t.res.PEI, nd.vpc)
	t.cost.charge(costEmitInst)
	t.maybeStateCopy(nd)
}

func (t *xlat) emitStore(i int, nd *node) {
	addr := t.operand(i, nd.srcs[0])
	data := t.operand(i, nd.srcs[1])
	addr, data = t.repairTwoGPRs(nd, addr, data)
	t.push(ildp.Inst{
		Kind: ildp.KindStore, Op: nd.op, SrcA: addr, SrcB: data, Disp: nd.disp,
		Acc: ildp.NoAcc, Dest: alpha.RegZero,
		VPC: nd.vpc, Class: ildp.ClassCore,
		VCredit: uint8(nd.vcredit),
	}, nd.strand)
	t.res.PEI = append(t.res.PEI, nd.vpc)
	t.cost.charge(costEmitInst)
}

func (t *xlat) emitCondBranch(i int, nd *node) {
	cond := t.operand(i, nd.srcs[0])
	t.push(ildp.Inst{
		Kind: ildp.KindCallTransCond, Op: nd.op, SrcA: cond,
		Acc: ildp.NoAcc, Dest: alpha.RegZero,
		VPC: nd.vpc, VAddr: nd.vtarget, Frag: ildp.NoFrag,
		Class: ildp.ClassCore, VCredit: uint8(nd.vcredit),
	}, nd.strand)
	t.res.PEI = append(t.res.PEI, nd.vpc)
	t.cost.charge(costEmitInst)
}

func (t *xlat) emitSaveVRA(nd *node) {
	t.push(ildp.Inst{
		Kind: ildp.KindSaveVRA, Acc: ildp.NoAcc, Dest: nd.dest, ArchDest: nd.dest,
		VPC: nd.vpc, VAddr: nd.saveAddr, Class: ildp.ClassCore,
		VCredit: uint8(nd.vcredit), Usage: nd.usage,
	}, -1)
	t.cost.charge(costEmitInst)
	if t.cfg.Chain == SWPredRAS {
		t.push(ildp.Inst{
			Kind: ildp.KindPushRAS, Acc: ildp.NoAcc, Dest: alpha.RegZero,
			VPC: nd.vpc, VAddr: nd.saveAddr, Class: ildp.ClassChain,
		}, -1)
		t.res.ChainCount++
		t.cost.charge(costEmitInst)
	}
}

// emitIndirect generates the fragment-chaining code for a register-indirect
// jump under the configured chaining mode (§3.2, §4.3).
func (t *xlat) emitIndirect(i int, nd *node) {
	target := t.operand(i, nd.srcs[0]) // always a GPR or immediate-zero
	credit := uint8(nd.vcredit)
	t.cost.charge(costChainExit)

	if nd.ind == indRet && t.cfg.Chain == SWPredRAS {
		// Dual-address RAS return: pop (V,I); on a V match jump to the
		// translated return point, else latch the target for dispatch and
		// fall through.
		t.push(ildp.Inst{
			Kind: ildp.KindJumpRet, SrcA: target,
			Acc: ildp.NoAcc, Dest: alpha.RegZero, Frag: ildp.NoFrag,
			VPC: nd.vpc, Class: ildp.ClassCore, VCredit: credit,
		}, -1)
		t.pushDispatchBranch(nd.vpc, 0)
		return
	}

	if t.cfg.Chain == NoPred {
		t.emitJTargetMove(nd, target)
		t.pushDispatchBranch(nd.vpc, credit)
		return
	}

	// Software jump-target prediction: latch the target for the dispatch
	// fallback, then load-embedded-target-address / compare / branch-to-
	// dispatch, and finally a patchable direct branch to the predicted
	// target's fragment.
	t.emitJTargetMove(nd, target)
	cmp := t.nextStrand
	t.nextStrand++
	t.push(ildp.Inst{
		Kind: ildp.KindLoadETA, WritesAcc: true,
		Dest: alpha.RegZero, ArchDest: alpha.RegZero,
		VPC: nd.vpc, VAddr: nd.vtarget, Class: ildp.ClassChain,
	}, cmp)
	t.push(ildp.Inst{
		Kind: ildp.KindALU, Op: alpha.OpXOR,
		SrcA: ildp.AccSrc(), SrcB: target,
		WritesAcc: true, Dest: alpha.RegZero, ArchDest: alpha.RegZero,
		VPC: nd.vpc, Class: ildp.ClassChain,
	}, cmp)
	t.push(ildp.Inst{
		Kind: ildp.KindCondBranch, Op: alpha.OpBNE, SrcA: ildp.AccSrc(),
		Dest: alpha.RegZero,
		VPC:  nd.vpc, Frag: ildp.FragDispatch,
		Class: ildp.ClassChain, VCredit: credit,
	}, cmp)
	t.push(ildp.Inst{
		Kind: ildp.KindCallTrans, Acc: ildp.NoAcc, Dest: alpha.RegZero,
		VPC: nd.vpc, VAddr: nd.vtarget, Frag: ildp.NoFrag,
		Class: ildp.ClassChain,
	}, -1)
	t.res.ChainCount += 4
}

// emitJTargetMove latches the indirect-jump target register into the VM's
// jump-target register for the shared dispatch routine, masking the low
// bits exactly as the architected indirect jump does (jmp ignores the two
// low target bits). The Modified form does it in one instruction; the
// Basic form masks into the accumulator and copies out.
func (t *xlat) emitJTargetMove(nd *node, target ildp.Src) {
	if target.Kind != ildp.SrcGPR {
		// Degenerate constant target; dispatch will read a zero latch.
		target = ildp.GPRSrc(alpha.RegZero)
	}
	s := t.nextStrand
	t.nextStrand++
	if t.cfg.Form == ildp.Modified {
		t.push(ildp.Inst{
			Kind: ildp.KindALU, Op: alpha.OpBIC,
			SrcA: target, SrcB: ildp.ImmSrc(3),
			WritesAcc: true, Dest: ildp.RegJTarget, ArchDest: alpha.RegZero,
			VPC: nd.vpc, Class: ildp.ClassChain,
		}, s)
		t.res.ChainCount++
		t.cost.charge(costEmitInst)
		return
	}
	t.push(ildp.Inst{
		Kind: ildp.KindALU, Op: alpha.OpBIC,
		SrcA: target, SrcB: ildp.ImmSrc(3),
		WritesAcc: true, Dest: alpha.RegZero, ArchDest: alpha.RegZero,
		VPC: nd.vpc, Class: ildp.ClassChain,
	}, s)
	t.push(ildp.Inst{
		Kind: ildp.KindCopyToGPR, Dest: ildp.RegJTarget,
		VPC: nd.vpc, Class: ildp.ClassChain,
	}, s)
	t.res.ChainCount += 2
	t.cost.charge(2 * costEmitInst)
}

func (t *xlat) pushDispatchBranch(vpc uint64, credit uint8) {
	t.push(ildp.Inst{
		Kind: ildp.KindBranch, Acc: ildp.NoAcc, Dest: alpha.RegZero,
		VPC: vpc, Frag: ildp.FragDispatch,
		Class: ildp.ClassChain, VCredit: credit,
	}, -1)
	t.res.ChainCount++
	t.cost.charge(costEmitInst)
}

// archDestOf returns the architected register the node's value represents.
func archDestOf(nd *node) alpha.Reg {
	if nd.isTemp {
		return alpha.RegZero
	}
	return nd.dest
}

package translate

import (
	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// strandState tracks one strand through accumulator assignment.
type strandState struct {
	acc     int       // assigned accumulator, -1 when none (unstarted or spilled)
	home    alpha.Reg // GPR holding the strand's current value, RegZero if none
	inGPR   bool      // current value is available in `home`
	started bool
	// archCur is the architected register whose current value lives only
	// in this strand's accumulator (Basic form), RegZero when none. It
	// decides where a spill must save the value to keep precise state
	// recoverable (§2.2).
	archCur alpha.Reg
}

// assignAccumulators maps the translator's unlimited strand numbers onto
// the finite accumulator file with a linear scan (§3.3). When no
// accumulator is free, the live strand with the farthest next use is
// terminated: a copy-to-GPR saves its value (unless already saved) and a
// copy-from-GPR re-loads it just before its next use.
func (t *xlat) assignAccumulators() {
	numAcc := t.cfg.NumAcc
	n := len(t.out)

	// Per-strand instruction positions (original indices).
	positions := make([][]int, t.nextStrand)
	for i := 0; i < n; i++ {
		if s := t.strandOf[i]; s >= 0 {
			positions[s] = append(positions[s], i)
		}
	}
	posPtr := make([]int, t.nextStrand)
	states := make([]strandState, t.nextStrand)
	for i := range states {
		states[i] = strandState{acc: -1, home: alpha.RegZero, archCur: alpha.RegZero}
	}
	// inAccStrand[r] is the strand whose accumulator holds the only copy
	// of architected register r's current value, -1 when the register file
	// is current (mirrors the precise-trap recovery mapping of §2.2).
	var inAccStrand [alpha.NumRegs]int
	for i := range inAccStrand {
		inAccStrand[i] = -1
	}
	accOwner := make([]int, numAcc) // strand owning each accumulator, -1 free
	for i := range accOwner {
		accOwner[i] = -1
	}

	// nextUse returns the next original index at which strand s appears at
	// or after the current pointer, or n when exhausted.
	nextUse := func(s int) int {
		p := posPtr[s]
		if p < len(positions[s]) {
			return positions[s][p]
		}
		return n
	}

	var out2 []ildp.Inst
	var strand2 []int
	emit := func(inst ildp.Inst, s int) {
		out2 = append(out2, inst)
		strand2 = append(strand2, s)
	}

	// allocate finds a free accumulator for strand s, spilling the live
	// strand with the farthest next use if necessary. Allocation is a
	// clock scan rather than lowest-free-first so that consecutive strands
	// land on distinct accumulators even when earlier ones have already
	// ended — accumulator identity steers strands to processing elements,
	// and spreading independent strands across PEs is what the
	// accumulator-based steering is for.
	clock := 0
	allocate := func(s int) int {
		for k := 0; k < numAcc; k++ {
			a := (clock + k) % numAcc
			if accOwner[a] == -1 {
				accOwner[a] = s
				clock = (a + 1) % numAcc
				return a
			}
		}
		victim, farthest := -1, -1
		for a := 0; a < numAcc; a++ {
			owner := accOwner[a]
			if owner == s {
				continue
			}
			if nu := nextUse(owner); nu > farthest {
				farthest, victim = nu, a
			}
		}
		vs := accOwner[victim]
		st := &states[vs]
		if !st.inGPR {
			if st.archCur != alpha.RegZero && inAccStrand[st.archCur] == vs {
				// The victim's value is the current definition of an
				// architected register and exists nowhere else: spill it
				// to its architected home so a precise trap can still
				// find it after the accumulator is reassigned (§2.2). The
				// reload, if any, reads the same home — every use of the
				// value precedes any redefinition of the register, so the
				// home cannot be clobbered before the reload.
				st.home = st.archCur
				inAccStrand[st.archCur] = -1
			} else if st.home == alpha.RegZero {
				st.home = t.nextScratch()
			}
			emit(ildp.Inst{
				Kind: ildp.KindCopyToGPR, Acc: ildp.AccID(victim),
				Dest: st.home, ArchDest: alpha.RegZero,
				Frag: ildp.NoFrag, Class: ildp.ClassCopy,
			}, vs)
			st.inGPR = true
			t.res.CopyCount++
			t.res.SpillCount++
			t.cost.charge(costSpill)
		}
		st.acc = -1
		accOwner[victim] = s
		return victim
	}

	for i := 0; i < n; i++ {
		inst := t.out[i]
		s := t.strandOf[i]
		if s < 0 {
			// Direct GPR writes (save-VRA) make the register file current.
			if inst.Dest != alpha.RegZero && int(inst.Dest) < alpha.NumRegs {
				inAccStrand[inst.Dest] = -1
			}
			emit(inst, s)
			continue
		}
		t.cost.charge(costAssignInst)
		st := &states[s]
		posPtr[s]++ // consume this position before any nextUse queries

		if st.acc < 0 {
			if st.started && inst.ReadsAcc() {
				// Resumption after a premature termination: re-load the
				// saved value into a fresh accumulator first.
				a := allocate(s)
				st.acc = a
				emit(ildp.Inst{
					Kind: ildp.KindCopyFromGPR, SrcA: ildp.GPRSrc(st.home),
					WritesAcc: true, Acc: ildp.AccID(a),
					Dest: alpha.RegZero, ArchDest: alpha.RegZero,
					Frag: ildp.NoFrag, Class: ildp.ClassCopy,
				}, s)
				t.res.CopyCount++
				t.res.SpillCount++
				t.cost.charge(costSpill)
			} else {
				st.acc = allocate(s)
			}
			st.started = true
		}
		inst.Acc = ildp.AccID(st.acc)

		// Track where the strand's current value lives.
		if inst.WritesAcc {
			st.home = alpha.RegZero
			st.inGPR = false
			if inst.Dest != alpha.RegZero {
				st.home = inst.Dest
				st.inGPR = true // Modified-form destination specifier
			}
			// Update the acc-only architected-state mapping: the old value
			// is overwritten; the new one is acc-only when the instruction
			// represents an architected register but writes no GPR.
			if st.archCur != alpha.RegZero && inAccStrand[st.archCur] == s {
				inAccStrand[st.archCur] = -1
			}
			st.archCur = alpha.RegZero
			if inst.ArchDest != alpha.RegZero && int(inst.ArchDest) < alpha.NumRegs &&
				inst.Dest == alpha.RegZero {
				st.archCur = inst.ArchDest
				inAccStrand[inst.ArchDest] = s
			}
		}
		if inst.Kind == ildp.KindCopyToGPR {
			st.home = inst.Dest
			st.inGPR = true
		}
		if inst.Dest != alpha.RegZero && int(inst.Dest) < alpha.NumRegs {
			inAccStrand[inst.Dest] = -1
		}

		emit(inst, s)

		// Free the accumulator after the strand's last instruction.
		if posPtr[s] == len(positions[s]) && st.acc >= 0 {
			accOwner[st.acc] = -1
			st.acc = -1
		}
	}

	t.out = out2
	t.strandOf = strand2
}

// nextScratch hands out VM-private scratch registers for spilled
// temporaries, cycling through the scratch file.
func (t *xlat) nextScratch() alpha.Reg {
	r := t.scratchNext
	t.scratchNext++
	if t.scratchNext >= ildp.NumGPR {
		t.scratchNext = ildp.ScratchBase
	}
	return r
}

// finish computes encoded sizes, builds the precise-trap recovery table,
// and finalises the translation cost.
func (t *xlat) finish() {
	for i := range t.out {
		inst := &t.out[i]
		t.res.CodeBytes += inst.EncodedSize(t.cfg.Form)
		t.cost.charge(costInstallInst) // structure copy into the tcache (§4.2)
	}
	t.buildPEIRecovery()
	t.cost.charge(costFragmentFixed)
	t.cost.charge(int64(len(t.res.PEI)) * costPEIEntry)
	t.res.Insts = t.out
	t.res.Strands = t.strandOf
	t.res.Cost = t.cost.units
}

// buildPEIRecovery walks the final instruction sequence tracking which
// architected registers' current values live only in an accumulator, and
// snapshots that mapping at every PEI-table point (§2.2). In the Modified
// form every producing instruction writes its destination GPR, so the
// mapping is always empty.
func (t *xlat) buildPEIRecovery() {
	inAcc := map[alpha.Reg]ildp.AccID{}
	isPEIPoint := func(inst *ildp.Inst) bool {
		if inst.Class != ildp.ClassCore {
			return false
		}
		switch inst.Kind {
		case ildp.KindLoad, ildp.KindStore, ildp.KindCallTransCond, ildp.KindCondBranch:
			return true
		}
		return false
	}
	for i := range t.out {
		inst := &t.out[i]
		if isPEIPoint(inst) {
			var pairs []RegAcc
			for r, a := range inAcc {
				pairs = append(pairs, RegAcc{Reg: r, Acc: a})
			}
			t.res.PEIRecover = append(t.res.PEIRecover, pairs)
		}
		// Apply the instruction's effects to the mapping.
		if inst.WritesAcc && inst.Acc != ildp.NoAcc {
			// The accumulator's previous content is gone.
			for r, a := range inAcc {
				if a == inst.Acc {
					delete(inAcc, r)
				}
			}
			if inst.ArchDest != alpha.RegZero && int(inst.ArchDest) < alpha.NumRegs &&
				inst.Dest == alpha.RegZero {
				// Basic form: the register's current value now lives only
				// in the accumulator.
				inAcc[inst.ArchDest] = inst.Acc
			}
		}
		// Any direct GPR write makes that register architecturally current
		// in the register file.
		if inst.Dest != alpha.RegZero && int(inst.Dest) < alpha.NumRegs {
			delete(inAcc, inst.Dest)
		}
	}
}

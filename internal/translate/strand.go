package translate

// formStrands implements the paper's strand-formation rules (§3.3). A
// source operand is "local" when its producing node designated this node as
// its accumulator-chained consumer. Nodes with no local inputs start a new
// strand; one local input joins the producer's strand; with two local
// inputs, the temp producer's strand wins (else the longer strand), and the
// losing value is converted to a spill global — its producer keeps the
// value in a GPR and the chain is broken.
func (t *xlat) formStrands() {
	strandLen := []int{} // nodes so far per strand

	newStrand := func() int {
		id := t.nextStrand
		t.nextStrand++
		strandLen = append(strandLen, 0)
		return id
	}

	for i := range t.nodes {
		nd := &t.nodes[i]
		t.cost.charge(costStrandNode)

		// Identify local (acc-chained) inputs.
		type localIn struct {
			slot   int
			def    int
			isTemp bool
		}
		var locals []localIn
		for s := 0; s < 2; s++ {
			src := nd.srcs[s]
			switch src.kind {
			case srcTemp:
				locals = append(locals, localIn{slot: s, def: src.def, isTemp: true})
			case srcReg:
				if src.def >= 0 && t.nodes[src.def].chainUse == i {
					locals = append(locals, localIn{slot: s, def: src.def})
				}
			}
		}

		switch len(locals) {
		case 0:
			// Only nodes that will write an accumulator start a strand.
			// Save-VRA writes its GPR directly; stores, branches, and
			// indirect jumps with no chained input read GPRs only.
			if nd.output() && nd.kind != nkSaveVRA {
				nd.strand = newStrand()
			} else {
				nd.strand = -1
			}
		case 1:
			nd.strand = t.nodes[locals[0].def].strand
		case 2:
			// Pick the winner: the temp producer first (it has no GPR home
			// at all); else prefer the value that is NOT already global —
			// a live-out or multi-use value reaches a GPR anyway, so
			// sacrificing it costs no extra copy (this is what makes the
			// paper's Fig. 2 "A3 <- R3 xor A3" come out of the xor whose
			// other input, the live-out ldq result, is global regardless);
			// else the longer strand (§3.3).
			win, lose := locals[0], locals[1]
			winGlobal := func(l localIn) bool { return !l.isTemp && t.nodes[l.def].liveOut }
			switch {
			case win.isTemp:
				// already ordered (two temps cannot occur: each node
				// consumes at most one decomposition temporary)
			case lose.isTemp:
				win, lose = lose, win
			case winGlobal(win) && !winGlobal(lose):
				win, lose = lose, win
			case winGlobal(lose) && !winGlobal(win):
				// already ordered
			default:
				if strandLen[t.nodes[lose.def].strand] > strandLen[t.nodes[win.def].strand] {
					win, lose = lose, win
				}
			}
			nd.strand = t.nodes[win.def].strand
			// The loser becomes a spill global: break its chain so its
			// consumer (this node) reads the GPR instead.
			loser := &t.nodes[lose.def]
			loser.chainUse = -1
			loser.spilled = true
			if !loser.liveOut && loser.uses < 2 {
				t.res.SpillCount++ // genuine two-local-input spill global
			}
		}
		if nd.strand >= 0 {
			strandLen[nd.strand]++
		}
	}
	t.classify()
}

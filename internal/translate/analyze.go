package translate

import (
	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// analyze computes, for every value-producing node: its in-superblock use
// count, the single consumer that may chain through the accumulator, its
// live-out status, and whether a superblock exit or potentially excepting
// instruction is encountered while the value is the current definition of
// its register (the Basic form must then save it for precise traps).
func (t *xlat) analyze() {
	n := len(t.nodes)

	// Reads of each node's output, and the overwrite point of each def.
	type useRec struct {
		consumer  int
		chainable bool
	}
	uses := make([][]useRec, n)
	overwrite := make([]int, n) // node index of next def of the same reg, or n
	for i := range overwrite {
		overwrite[i] = n
	}
	cur := [alpha.NumRegs]int{} // current def node per register
	for i := range cur {
		cur[i] = -1
	}

	for i := range t.nodes {
		nd := &t.nodes[i]
		t.cost.charge(costAnalyzeNode)
		for s := 0; s < 2; s++ {
			src := nd.srcs[s]
			switch src.kind {
			case srcTemp:
				uses[src.def] = append(uses[src.def], useRec{consumer: i, chainable: true})
			case srcReg:
				if src.def >= 0 {
					chainable := true
					// Indirect-jump targets are read from GPRs; a CMOV
					// select's move source shares the instruction with the
					// temp accumulator, so it cannot chain either.
					if nd.kind == nkIndirect {
						chainable = false
					}
					if nd.kind == nkCMOVSel && s == 1 {
						chainable = false
					}
					uses[src.def] = append(uses[src.def], useRec{consumer: i, chainable: chainable})
				}
			}
		}
		if nd.phantomDef >= 0 {
			uses[nd.phantomDef] = append(uses[nd.phantomDef], useRec{consumer: i, chainable: false})
		}
		if nd.output() && !nd.isTemp && nd.dest != alpha.RegZero {
			if prev := cur[nd.dest]; prev >= 0 {
				overwrite[prev] = i
			}
			cur[nd.dest] = i
		}
	}

	// Prefix counts for exposure queries. Exits are superblock side exits
	// (conditional branches); trap recovery can read a value still held in
	// an accumulator (the co-designed trap hardware knows the static
	// acc-to-register mapping at each PEI), so PEIs force a save only in
	// the window after the accumulator has been overwritten by a consumer
	// that does not redefine the same architected register.
	prefixExit := make([]int, n+1)
	prefixBoth := make([]int, n+1) // exits and PEIs
	for i := range t.nodes {
		e, b := 0, 0
		if t.nodes[i].kind == nkCondBranch {
			e, b = 1, 1
		} else if t.nodes[i].isPEI {
			b = 1
		}
		prefixExit[i+1] = prefixExit[i] + e
		prefixBoth[i+1] = prefixBoth[i] + b
	}
	exitIn := func(lo, hi int) bool { return prefixExit[hi]-prefixExit[lo+1] > 0 }
	bothIn := func(lo, hi int) bool { return prefixBoth[hi]-prefixBoth[lo+1] > 0 }

	for i := range t.nodes {
		nd := &t.nodes[i]
		if !nd.output() {
			continue
		}
		nd.uses = len(uses[i])
		ow := overwrite[i]
		if nd.isTemp || nd.dest == alpha.RegZero {
			nd.liveOut = false
		} else {
			nd.liveOut = ow == n
		}
		// Single-use defs may chain their consumer through the accumulator;
		// conditional-move selects always publish through the GPR, and
		// save-VRA writes the GPR directly.
		chained := -1
		if nd.uses == 1 && uses[i][0].chainable &&
			nd.kind != nkCMOVSel && nd.kind != nkSaveVRA {
			chained = uses[i][0].consumer
			nd.chainUse = chained
		}
		if nd.isTemp || nd.dest == alpha.RegZero {
			continue
		}
		// Exposure rule 1: the value must be in its GPR at any side exit
		// while it is the current definition.
		nd.exitPEI = exitIn(i, ow)
		// Exposure rule 2: once a chained consumer overwrites the
		// accumulator without redefining the register, a later PEI or exit
		// can no longer recover the value from the accumulator.
		if !nd.exitPEI && chained >= 0 && chained < ow &&
			t.nodes[chained].dest != nd.dest && bothIn(chained, ow) {
			nd.exitPEI = true
		}
		// Exposure rule 3: the overwriting instruction itself is a PEI and
		// the accumulator no longer holds this value at that point.
		if !nd.exitPEI && ow < n && t.nodes[ow].isPEI && chained != ow {
			nd.exitPEI = true
		}
		// Exposure rule 4: a def with no users is a singleton strand, so
		// its accumulator is freed immediately and may be reassigned
		// before a PEI that still precedes the register's redefinition —
		// at which point neither a GPR nor an accumulator holds the
		// value. Any PEI in the window therefore forces a GPR home.
		if !nd.exitPEI && nd.uses == 0 && bothIn(i, ow) {
			nd.exitPEI = true
		}
	}
}

// classify assigns the paper's output-usage categories after strand
// formation has resolved two-local-input conflicts.
func (t *xlat) classify() {
	for i := range t.nodes {
		nd := &t.nodes[i]
		if !nd.output() {
			nd.usage = ildp.UsageNone
			continue
		}
		t.cost.charge(costClassifyNode)
		switch {
		case nd.isTemp:
			nd.usage = ildp.UsageTemp
		case nd.liveOut:
			nd.usage = ildp.UsageLiveOut
		case nd.uses >= 2 || (nd.uses == 1 && nd.chainUse < 0):
			// Multi-use values, and single-use values that cannot chain
			// (spilled by the two-local rule, CMOV publishes, jump
			// targets), communicate through GPRs.
			nd.usage = ildp.UsageComm
		case nd.uses == 1:
			if nd.exitPEI {
				nd.usage = ildp.UsageLocalGlobal
			} else {
				nd.usage = ildp.UsageLocal
			}
		default:
			if nd.exitPEI {
				nd.usage = ildp.UsageNoUserGlobal
			} else {
				nd.usage = ildp.UsageNoUser
			}
		}
		t.res.Usage[nd.usage]++
	}
}

// needsGPRHome reports whether the node's value must be available in a GPR:
// in the Basic form this forces an explicit copy-to-GPR after the producing
// instruction; in the Modified form the destination-GPR specifier covers it.
func needsGPRHome(u ildp.UsageClass) bool {
	switch u {
	case ildp.UsageLiveOut, ildp.UsageComm, ildp.UsageLocalGlobal, ildp.UsageNoUserGlobal:
		return true
	}
	return false
}

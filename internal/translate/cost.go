package translate

// Translation-overhead cost model (§4.2). The paper measured the DBT with
// Atom on an Alpha 21164 and reported an average of about 1,125 Alpha
// instructions executed per translated Alpha instruction, roughly 20% of
// it spent copying translated-instruction structures into the translation
// cache field by field. The constants below charge work units (modelled
// Alpha instructions) to each translator step with that granularity, so
// per-benchmark overhead varies with instruction mix exactly as in Table 2
// (more memory decomposition, chaining exits, and spills cost more).
const (
	costDecodeInst    = 90   // fetch + decode one source instruction
	costDecomposeNode = 55   // build one dependence node
	costAnalyzeNode   = 130  // def-use and exposure analysis per node
	costStrandNode    = 85   // strand formation per node
	costClassifyNode  = 55   // usage classification per node
	costEmitNode      = 35   // per-node emission dispatch
	costEmitInst      = 160  // construct one I-ISA instruction
	costAssignInst    = 55   // linear-scan accumulator assignment per inst
	costInstallInst   = 185  // copy the instruction into the tcache (the 20%)
	costChainExit     = 320  // chaining code generation per indirect exit
	costSpill         = 70   // strand termination / resumption handling
	costPEIEntry      = 15   // PEI table entry
	costFragmentFixed = 2400 // per-fragment bookkeeping, counters, map updates

	// costStraightenPerInst is the (much lower) per-instruction cost of
	// the code-straightening-only translation.
	costStraightenPerInst = 310
)

// costMeter accumulates translation work units.
type costMeter struct {
	units int64
}

func (c *costMeter) charge(n int64) { c.units += n }

// Package translate implements the dynamic binary translation algorithm of
// Kim & Smith (CGO 2003, §3.3): decomposition of Alpha superblocks into
// dependence nodes, output-usage ("globalness") classification, strand
// formation, linear-scan accumulator assignment with strand termination
// spills, precise-trap bookkeeping (PEI tables and Basic-form copy-to-GPR
// insertion), and fragment-chaining code generation.
//
// The translator deliberately performs no instruction re-scheduling and no
// classical optimization beyond the code straightening inherent in
// superblock formation; the underlying ILDP microarchitecture is dynamic
// superscalar and is relied on for scheduling, which is what keeps
// translation overhead an order of magnitude below VLIW-targeting systems.
package translate

import (
	"errors"
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// ChainMode selects the fragment-chaining implementation evaluated in the
// paper's §4.3 (Fig. 4).
type ChainMode uint8

const (
	// NoPred: every register-indirect jump branches to the shared dispatch
	// routine.
	NoPred ChainMode = iota
	// SWPred: translation-time software jump-target prediction — a
	// load-embedded-target-address / compare / branch-to-dispatch sequence
	// guards a direct branch to the predicted target's fragment.
	SWPred
	// SWPredRAS: SWPred plus the dual-address hardware return address
	// stack; returns pop a (V-ISA, I-ISA) pair instead of running the
	// compare-and-branch sequence.
	SWPredRAS
)

var chainNames = [...]string{"no_pred", "sw_pred.no_ras", "sw_pred.ras"}

func (m ChainMode) String() string {
	if int(m) < len(chainNames) {
		return chainNames[m]
	}
	return fmt.Sprintf("chain(%d)", uint8(m))
}

// Config controls translation.
type Config struct {
	Form   ildp.Form
	NumAcc int // logical accumulators (4 in the paper; 8 as a variant)
	Chain  ChainMode

	// FuseMemOps keeps load/store displacements inside the memory
	// instruction instead of splitting address computation into a separate
	// ALU instruction — the instruction-count reduction the paper proposes
	// in §4.5 ("not split memory instructions into two"), at the cost of
	// address-adder pressure in the decode/issue path. Stores with two
	// live register inputs still split, as the paper notes.
	FuseMemOps bool
}

// DefaultConfig returns the paper's baseline configuration: modified ISA,
// four accumulators, software prediction with dual-address RAS.
func DefaultConfig() Config {
	return Config{Form: ildp.Modified, NumAcc: ildp.DefaultAccumulators, Chain: SWPredRAS}
}

// FingerprintLen is the size of a Config fingerprint in bytes.
const FingerprintLen = 4

// Fingerprint returns the canonical binary fingerprint of the
// configuration fields that determine translation output: form,
// accumulator count, chain mode, and the memory-fusion flag, one byte
// each. Translation is a pure function of (superblock, Config), so two
// translations agree whenever their superblocks and fingerprints agree —
// the property the content-addressed fragment store keys on. Equal
// configs always produce equal fingerprints, and every field that can
// change the emitted code is included.
func (c Config) Fingerprint() [FingerprintLen]byte {
	var fp [FingerprintLen]byte
	fp[0] = byte(c.Form)
	fp[1] = byte(c.NumAcc)
	fp[2] = byte(c.Chain)
	if c.FuseMemOps {
		fp[3] = 1
	}
	return fp
}

// EndKind records why superblock collection stopped (§3.1 fragment ending
// conditions).
type EndKind uint8

const (
	EndIndirect EndKind = iota // register-indirect jump (JMP/JSR/RET)
	EndBackward                // backward taken conditional branch
	EndCycle                   // already-collected instruction reached
	EndMaxSize                 // predefined maximum number of instructions
	EndTrap                    // trap instruction (CALL_PAL) reached
)

var endNames = [...]string{"indirect", "backward-branch", "cycle", "max-size", "trap"}

func (k EndKind) String() string {
	if int(k) < len(endNames) {
		return endNames[k]
	}
	return fmt.Sprintf("end(%d)", uint8(k))
}

// SBInst is one V-ISA instruction of a collected superblock.
type SBInst struct {
	PC    uint64
	Inst  alpha.Inst
	Taken bool // conditional branches: direction observed during collection
	// PredTarget is the observed target of a register-indirect jump (the
	// translation-time software prediction).
	PredTarget uint64
}

// Superblock is a hot trace collected by the interpreter: a single-entry,
// multiple-exit code sequence in dynamic (already straightened) order.
type Superblock struct {
	StartPC uint64
	Insts   []SBInst
	End     EndKind
	// NextPC is the V-ISA continuation address when the superblock does not
	// end in an indirect jump: the fall-through of the final backward
	// branch, the cycle target, the instruction after the size limit, or
	// the trap instruction itself.
	NextPC uint64
}

// UsageCounts tallies output-usage classes over the producing instructions
// of a translation (static, per superblock); the VM weights them by
// execution for the paper's Fig. 7.
type UsageCounts [8]int64

// Add accumulates other into u.
func (u *UsageCounts) Add(other UsageCounts) {
	for i := range u {
		u[i] += other[i]
	}
}

// Total returns the number of classified values.
func (u *UsageCounts) Total() int64 {
	var t int64
	for i := 1; i < len(u); i++ { // skip UsageNone
		t += u[i]
	}
	return t
}

// Result is the output of translating one superblock.
type Result struct {
	VStart uint64
	Form   ildp.Form
	Insts  []ildp.Inst

	// PEI is the table of V-ISA addresses of potentially excepting
	// instructions and conditional branches, in program order, used for
	// precise-trap address recovery (§2.2).
	PEI []uint64

	// PEIRecover parallels PEI: for each entry, the architected registers
	// whose current value resides only in an accumulator at that point
	// (Basic form), which the co-designed trap hardware materialises from
	// the accumulator file on a trap. Empty in the Modified form, where
	// the destination-GPR specifiers keep architected state current.
	PEIRecover [][]RegAcc

	// Strands annotates every instruction of Insts with the strand it was
	// emitted for (parallel slice; -1 for strand-less overhead such as the
	// set-VPC prologue, stores and branches with GPR-only inputs, and
	// dispatch stubs). Verification uses it to prove that accumulator
	// dataflow never crosses strands (§3.3). Nil for straightened code.
	Strands []int

	// ExitLive parallels PEI: for each PEI-table point, the architected
	// registers the fragment has (re)defined before that point. Those are
	// exactly the registers whose current values a precise trap or side
	// exit must be able to recover from I-ISA state (§2.2); registers not
	// listed still hold their fragment-entry values in the register file.
	ExitLive [][]alpha.Reg

	// EndLive is the same set at the fragment's final exit.
	EndLive []alpha.Reg

	// Straightened marks a code-straightening-only translation (Alpha to
	// straightened Alpha for the conventional superscalar): instructions
	// are 1:1, carry two GPR sources, and are 4 bytes each.
	Straightened bool

	// SrcCount is the number of V-ISA instructions consumed, excluding
	// removed NOPs; NOPCount the number of removed NOPs; BranchElims the
	// number of unconditional direct branches removed by straightening.
	SrcCount    int
	NOPCount    int
	BranchElims int

	// CopyCount is the number of copy-to-GPR / copy-from-GPR instructions
	// emitted (Table 2 columns 4-5); SpillCount the subset forced by
	// accumulator exhaustion.
	CopyCount  int
	SpillCount int

	// ChainCount is the number of chaining-overhead instructions.
	ChainCount int

	Usage UsageCounts

	// CodeBytes is the encoded size of the translated fragment under the
	// configured form; SrcBytes the size of the consumed Alpha code
	// (including removed NOPs, which occupied source bytes).
	CodeBytes int
	SrcBytes  int

	// Cost is the modelled translation overhead in Alpha-instruction
	// work units (§4.2).
	Cost int64
}

// RegAcc is one precise-trap recovery pair: architected register Reg's
// current value is held by accumulator Acc.
type RegAcc struct {
	Reg alpha.Reg
	Acc ildp.AccID
}

// Errors.
var (
	ErrEmptySuperblock = errors.New("translate: empty superblock")
	ErrUnsupported     = errors.New("translate: unsupported instruction in superblock")
)

// Translate translates one superblock under the given configuration.
func Translate(sb *Superblock, cfg Config) (*Result, error) {
	if len(sb.Insts) == 0 {
		return nil, ErrEmptySuperblock
	}
	if cfg.NumAcc <= 0 || cfg.NumAcc > ildp.MaxAccumulators {
		return nil, fmt.Errorf("translate: bad accumulator count %d", cfg.NumAcc)
	}
	t := &xlat{sb: sb, cfg: cfg, res: &Result{VStart: sb.StartPC, Form: cfg.Form}}
	if err := t.decompose(); err != nil {
		return nil, err
	}
	t.analyze()
	t.computeExitLive()
	t.formStrands()
	if err := t.emit(); err != nil {
		return nil, err
	}
	t.assignAccumulators()
	t.finish()
	return t.res, nil
}

// xlat carries translation state across passes.
type xlat struct {
	sb  *Superblock
	cfg Config
	res *Result

	nodes []node

	// lastDef maps an architected register to the node index of its most
	// recent definition during decomposition (-1 = live-in).
	lastDef [alpha.NumRegs]int

	out []ildp.Inst

	// strand bookkeeping for emission / accumulator assignment
	nextStrand  int
	strandOf    []int // per emitted instruction
	scratchNext alpha.Reg

	cost costMeter
}

package translate

import (
	"fmt"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/ildp"
)

// Straighten performs the paper's third translation: Alpha to
// code-straightened Alpha, run on the conventional superscalar simulator to
// isolate the effects of code straightening and fragment chaining from the
// accumulator ISA itself (§4.1). Instructions translate 1:1 (two GPR
// sources allowed, 4 bytes each); memory operations keep their
// displacement; NOPs are removed and unconditional direct branches are
// straightened away exactly as in the accumulator translations; fragment
// chaining code is generated under the same three chaining modes.
func Straighten(sb *Superblock, chain ChainMode) (*Result, error) {
	if len(sb.Insts) == 0 {
		return nil, ErrEmptySuperblock
	}
	s := &straightener{sb: sb, chain: chain,
		res: &Result{VStart: sb.StartPC, Straightened: true}}
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.res, nil
}

type straightener struct {
	sb     *Superblock
	chain  ChainMode
	res    *Result
	credit int
}

func (s *straightener) push(inst ildp.Inst) {
	if !inst.WritesAcc && !inst.ReadsAcc() {
		inst.Acc = ildp.NoAcc
	}
	if !inst.IsControl() {
		inst.Frag = ildp.NoFrag
	}
	// Retirement credit from straightened-away branches attaches to the
	// next emitted instruction.
	if s.credit > 0 && inst.Kind != ildp.KindSetVPC {
		inst.VCredit += uint8(s.credit)
		s.credit = 0
	}
	s.res.Insts = append(s.res.Insts, inst)
	s.res.CodeBytes += alpha.InstBytes
}

func (s *straightener) run() error {
	s.push(ildp.Inst{Kind: ildp.KindSetVPC, VAddr: s.sb.StartPC,
		Dest: alpha.RegZero, Class: ildp.ClassSpecial})

	for si := range s.sb.Insts {
		rec := &s.sb.Insts[si]
		inst := rec.Inst
		last := si == len(s.sb.Insts)-1
		s.res.SrcBytes += alpha.InstBytes

		if inst.IsNOP() {
			s.res.NOPCount++
			continue
		}
		s.res.SrcCount++

		switch {
		case inst.Op == alpha.OpLDA || inst.Op == alpha.OpLDAH:
			imm := int64(inst.Disp)
			if inst.Op == alpha.OpLDAH {
				imm <<= 16
			}
			s.push(ildp.Inst{Kind: ildp.KindALU, Op: alpha.OpLDA,
				SrcA: ildp.GPRSrc(inst.Rb), SrcB: ildp.ImmSrc(imm),
				Dest: inst.Ra, ArchDest: inst.Ra,
				VPC: rec.PC, Class: ildp.ClassCore, VCredit: 1})

		case inst.Format == alpha.FormatOperate && inst.IsCMOV():
			sel := ildp.Inst{Kind: ildp.KindCMOV, Op: inst.Op,
				SrcA: ildp.GPRSrc(inst.Ra),
				Dest: inst.Rc, ArchDest: inst.Rc,
				VPC: rec.PC, Class: ildp.ClassCore, VCredit: 1}
			if inst.UseLit {
				sel.SrcB = ildp.ImmSrc(int64(inst.Lit))
			} else {
				sel.SrcB = ildp.GPRSrc(inst.Rb)
			}
			s.push(sel)

		case inst.Format == alpha.FormatOperate:
			out := ildp.Inst{Kind: ildp.KindALU, Op: inst.Op,
				SrcA: ildp.GPRSrc(inst.Ra),
				Dest: inst.Rc, ArchDest: inst.Rc,
				VPC: rec.PC, Class: ildp.ClassCore, VCredit: 1}
			if inst.UseLit {
				out.SrcB = ildp.ImmSrc(int64(inst.Lit))
			} else {
				out.SrcB = ildp.GPRSrc(inst.Rb)
			}
			s.push(out)

		case inst.IsLoad():
			s.push(ildp.Inst{Kind: ildp.KindLoad, Op: inst.Op,
				SrcA: ildp.GPRSrc(inst.Rb), Disp: inst.Disp,
				Dest: inst.Ra, ArchDest: inst.Ra,
				VPC: rec.PC, Class: ildp.ClassCore, VCredit: 1})
			s.res.PEI = append(s.res.PEI, rec.PC)
			s.res.PEIRecover = append(s.res.PEIRecover, nil)

		case inst.IsStore():
			s.push(ildp.Inst{Kind: ildp.KindStore, Op: inst.Op,
				SrcA: ildp.GPRSrc(inst.Rb), SrcB: ildp.GPRSrc(inst.Ra),
				Disp: inst.Disp, Dest: alpha.RegZero,
				VPC: rec.PC, Class: ildp.ClassCore, VCredit: 1})
			s.res.PEI = append(s.res.PEI, rec.PC)
			s.res.PEIRecover = append(s.res.PEIRecover, nil)
			if inst.Op == alpha.OpSTLC || inst.Op == alpha.OpSTQC {
				s.push(ildp.Inst{Kind: ildp.KindALU, Op: alpha.OpBIS,
					SrcA: ildp.ImmSrc(0), SrcB: ildp.ImmSrc(1),
					Dest: inst.Ra, ArchDest: inst.Ra,
					VPC: rec.PC, Class: ildp.ClassCore})
			}

		case inst.IsCondBranch():
			op := inst.Op
			exitTarget := inst.BranchTarget(rec.PC)
			if !(last && s.sb.End == EndBackward) && rec.Taken {
				rop, err := reverseCond(op)
				if err != nil {
					return err
				}
				op = rop
				exitTarget = rec.PC + alpha.InstBytes
			}
			s.push(ildp.Inst{Kind: ildp.KindCallTransCond, Op: op,
				SrcA: ildp.GPRSrc(inst.Ra), Dest: alpha.RegZero,
				VPC: rec.PC, VAddr: exitTarget, Frag: ildp.NoFrag,
				Class: ildp.ClassCore, VCredit: 1})
			s.res.PEI = append(s.res.PEI, rec.PC)
			s.res.PEIRecover = append(s.res.PEIRecover, nil)

		case inst.Op == alpha.OpBR && inst.Ra == alpha.RegZero:
			s.credit++
			s.res.BranchElims++

		case inst.Op == alpha.OpBR || inst.Op == alpha.OpBSR:
			s.emitSaveVRA(rec.PC, inst.Ra)

		case inst.IsIndirect():
			if inst.Ra != alpha.RegZero && inst.Ra == inst.Rb {
				// The link write precedes the target read in translated
				// code; see the accumulator translator for rationale.
				return fmt.Errorf("%w: %v with link == target register at %#x",
					ErrUnsupported, inst.Op, rec.PC)
			}
			if inst.Ra != alpha.RegZero {
				s.emitSaveVRA(rec.PC, inst.Ra)
				s.emitIndirect(rec, inst, 0)
			} else {
				s.emitIndirect(rec, inst, 1)
			}

		default:
			return fmt.Errorf("%w: %v at %#x", ErrUnsupported, inst.Op, rec.PC)
		}
	}

	if s.sb.End != EndIndirect {
		s.push(ildp.Inst{Kind: ildp.KindCallTrans, VAddr: s.sb.NextPC,
			Dest: alpha.RegZero, Frag: ildp.NoFrag, Class: ildp.ClassChain})
		s.res.ChainCount++
	}
	if len(s.res.Insts) <= 1 {
		return ErrEmptySuperblock
	}
	s.res.Cost = int64(s.res.SrcCount) * costStraightenPerInst
	return nil
}

func (s *straightener) emitSaveVRA(pc uint64, ra alpha.Reg) {
	s.push(ildp.Inst{Kind: ildp.KindSaveVRA, Dest: ra, ArchDest: ra,
		VPC: pc, VAddr: pc + alpha.InstBytes,
		Class: ildp.ClassCore, VCredit: 1})
	if s.chain == SWPredRAS {
		s.push(ildp.Inst{Kind: ildp.KindPushRAS, Dest: alpha.RegZero,
			VPC: pc, VAddr: pc + alpha.InstBytes, Class: ildp.ClassChain})
		s.res.ChainCount++
	}
}

// emitIndirect generates straightened-Alpha chaining code. The conventional
// ISA has no load-embedded-target-address instruction, so the embedded
// compare costs one extra address-materialisation instruction compared
// with the accumulator forms.
func (s *straightener) emitIndirect(rec *SBInst, inst alpha.Inst, credit uint8) {
	target := ildp.GPRSrc(inst.Rb)

	if inst.Op == alpha.OpRET && s.chain == SWPredRAS {
		s.push(ildp.Inst{Kind: ildp.KindJumpRet, SrcA: target,
			Dest: alpha.RegZero, Frag: ildp.NoFrag,
			VPC: rec.PC, Class: ildp.ClassCore, VCredit: credit})
		s.push(ildp.Inst{Kind: ildp.KindBranch, Dest: alpha.RegZero,
			VPC: rec.PC, Frag: ildp.FragDispatch, Class: ildp.ClassChain})
		s.res.ChainCount++
		return
	}

	// Latch the jump target for the dispatch routine, masking the low
	// bits exactly as the architected indirect jump does.
	s.push(ildp.Inst{Kind: ildp.KindALU, Op: alpha.OpBIC,
		SrcA: target, SrcB: ildp.ImmSrc(3),
		Dest: ildp.RegJTarget, ArchDest: alpha.RegZero,
		VPC: rec.PC, Class: ildp.ClassChain})
	s.res.ChainCount++

	if s.chain == NoPred {
		s.push(ildp.Inst{Kind: ildp.KindBranch, Dest: alpha.RegZero,
			VPC: rec.PC, Frag: ildp.FragDispatch,
			Class: ildp.ClassChain, VCredit: credit})
		s.res.ChainCount++
		return
	}

	// Software prediction: ldah/lda target materialisation (modelled as
	// load-ETA plus one ALU), compare, branch to dispatch, direct branch.
	s.push(ildp.Inst{Kind: ildp.KindLoadETA, WritesAcc: true, Acc: 0,
		Dest: alpha.RegZero, VPC: rec.PC, VAddr: rec.PredTarget,
		Class: ildp.ClassChain})
	s.push(ildp.Inst{Kind: ildp.KindALU, Op: alpha.OpBIS,
		SrcA: ildp.AccSrc(), SrcB: ildp.ImmSrc(0),
		WritesAcc: true, Acc: 0, Dest: alpha.RegZero,
		VPC: rec.PC, Class: ildp.ClassChain})
	s.push(ildp.Inst{Kind: ildp.KindALU, Op: alpha.OpXOR,
		SrcA: ildp.AccSrc(), SrcB: target,
		WritesAcc: true, Acc: 0, Dest: alpha.RegZero,
		VPC: rec.PC, Class: ildp.ClassChain})
	s.push(ildp.Inst{Kind: ildp.KindCondBranch, Op: alpha.OpBNE,
		SrcA: ildp.AccSrc(), Acc: 0, Dest: alpha.RegZero,
		VPC: rec.PC, Frag: ildp.FragDispatch,
		Class: ildp.ClassChain, VCredit: credit})
	s.push(ildp.Inst{Kind: ildp.KindCallTrans, Dest: alpha.RegZero,
		VPC: rec.PC, VAddr: rec.PredTarget, Frag: ildp.NoFrag,
		Class: ildp.ClassChain})
	s.res.ChainCount += 5
}

package translate

import "github.com/ildp/accdbt/internal/alpha"

// computeExitLive records, for every PEI-table point and for the fragment
// end, which architected registers the fragment has defined so far. A
// precise trap (or a side exit followed by interpretation) must be able to
// recover the current values of exactly these registers from I-ISA state:
// registers the fragment has not touched are still architecturally current
// in the register file, so only fragment-defined values can be at risk.
//
// The sets are computed at the node level, before emission, accumulator
// assignment, or Basic-form copy insertion, so they are independent of the
// bookkeeping (PEIRecover) that the instruction-level passes build — which
// is what makes them useful as a cross-check for static verification.
//
// PEI-table points are loads, stores, and conditional branches (the PEI
// entries appended by the emitter), in node order.
func (t *xlat) computeExitLive() {
	var defined [alpha.NumRegs]bool
	snapshot := func() []alpha.Reg {
		var regs []alpha.Reg
		for r := 0; r < alpha.NumRegs; r++ {
			if defined[r] {
				regs = append(regs, alpha.Reg(r))
			}
		}
		return regs
	}
	for i := range t.nodes {
		nd := &t.nodes[i]
		if nd.isPEI || nd.kind == nkCondBranch {
			// The snapshot precedes the node's own definition: a trap at
			// the node reports state from before its effects.
			t.res.ExitLive = append(t.res.ExitLive, snapshot())
		}
		if nd.output() && !nd.isTemp && nd.dest != alpha.RegZero {
			defined[nd.dest] = true
		}
	}
	t.res.EndLive = snapshot()
}

package translate

import (
	"testing"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/ildp"
)

// sbFromAsm assembles src, decodes the instructions in program order
// starting at start, and builds a superblock. takens marks which
// conditional branches (in order of appearance) were taken during
// collection.
func sbFromAsm(t *testing.T, src string, start uint64, end EndKind, nextPC uint64, takens ...bool) *Superblock {
	t.Helper()
	prog := alphaasm.MustAssemble(src)
	var seg []byte
	var segAddr uint64
	for _, s := range prog.Segments {
		if s.Addr <= start && start < s.Addr+uint64(len(s.Data)) {
			seg, segAddr = s.Data, s.Addr
		}
	}
	if seg == nil {
		t.Fatalf("start %#x not in any segment", start)
	}
	sb := &Superblock{StartPC: start, End: end, NextPC: nextPC}
	brIdx := 0
	for off := start - segAddr; off+4 <= uint64(len(seg)); off += 4 {
		w := alpha.Word(uint32(seg[off]) | uint32(seg[off+1])<<8 |
			uint32(seg[off+2])<<16 | uint32(seg[off+3])<<24)
		inst := alpha.Decode(w)
		rec := SBInst{PC: segAddr + off, Inst: inst}
		if inst.IsCondBranch() {
			if brIdx < len(takens) {
				rec.Taken = takens[brIdx]
			}
			brIdx++
		}
		if inst.IsIndirect() {
			rec.PredTarget = 0x77000 // arbitrary prediction for tests
		}
		sb.Insts = append(sb.Insts, rec)
		if inst.IsIndirect() || inst.Op == alpha.OpCallPAL {
			break
		}
		if inst.IsCondBranch() && end == EndBackward && segAddr+off+4-start >= 0 &&
			int(off+4-(start-segAddr))/4 == countInsts(seg, start-segAddr) {
			break
		}
	}
	return sb
}

func countInsts(seg []byte, startOff uint64) int {
	return (len(seg) - int(startOff)) / 4
}

// fig2Src is the paper's Fig. 2 example from 164.gzip.
const fig2Src = `
	.text 0x12000
L1:
	ldbu   t2, 0(a0)
	subl   a1, #1, a1
	lda    a0, 1(a0)
	xor    t0, t2, t2
	srl    t0, #8, t0
	and    t2, #255, t2
	s8addq t2, v0, t2
	ldq    t2, 0(t2)
	xor    t2, t0, t0
	bne    a1, L1
`

func fig2SB(t *testing.T) *Superblock {
	t.Helper()
	return sbFromAsm(t, fig2Src, 0x12000, EndBackward, 0x12000+10*4, true)
}

func mustTranslate(t *testing.T, sb *Superblock, cfg Config) *Result {
	t.Helper()
	res, err := Translate(sb, cfg)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	for i := range res.Insts {
		if err := res.Insts[i].Validate(cfg.Form); err != nil {
			t.Fatalf("inst %d %q invalid: %v", i, res.Insts[i].String(), err)
		}
	}
	return res
}

func TestFig2Modified(t *testing.T) {
	res := mustTranslate(t, fig2SB(t), Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})

	if res.SrcCount != 10 {
		t.Errorf("SrcCount = %d, want 10", res.SrcCount)
	}
	if res.CopyCount != 0 {
		t.Errorf("modified ISA emitted %d copies, want 0", res.CopyCount)
	}
	// set-vpc + 9 translated + cond branch + trailing branch = 12.
	if len(res.Insts) != 12 {
		for i := range res.Insts {
			t.Logf("%2d: %s", i, res.Insts[i].String())
		}
		t.Fatalf("got %d instructions, want 12", len(res.Insts))
	}

	wantKinds := []ildp.Kind{
		ildp.KindSetVPC,
		ildp.KindLoad,          // R3 (A0) <- mem[R16]
		ildp.KindALU,           // R17(A1) <- R17 - 1
		ildp.KindALU,           // R16(A2) <- R16 + 1
		ildp.KindALU,           // R3 (A0) <- R1 xor A0
		ildp.KindALU,           // R1 (A3) <- R1 << 8
		ildp.KindALU,           // R3 (A0) <- A0 and 0xff
		ildp.KindALU,           // R3 (A0) <- 8*A0 + R0
		ildp.KindLoad,          // R3 (A0) <- mem[A0]
		ildp.KindALU,           // R1 (A3) <- R3 xor A3
		ildp.KindCallTransCond, // P <- L1 if A1 != 0
		ildp.KindCallTrans,     // P <- L2
	}
	for i, k := range wantKinds {
		if res.Insts[i].Kind != k {
			t.Errorf("inst %d kind = %v, want %v (%s)", i, res.Insts[i].Kind, k, res.Insts[i].String())
		}
	}

	// Accumulator assignments must follow the paper's A0..A3 pattern.
	wantAcc := map[int]ildp.AccID{1: 0, 2: 1, 3: 2, 4: 0, 5: 3, 6: 0, 7: 0, 8: 0, 9: 3, 10: 1}
	for i, a := range wantAcc {
		if res.Insts[i].Acc != a {
			t.Errorf("inst %d (%s) acc = A%d, want A%d", i, res.Insts[i].String(), res.Insts[i].Acc, a)
		}
	}

	// Every producing instruction carries its architected destination.
	wantDest := map[int]alpha.Reg{1: 3, 2: 17, 3: 16, 4: 3, 5: 1, 6: 3, 7: 3, 8: 3, 9: 1}
	for i, d := range wantDest {
		if res.Insts[i].Dest != d {
			t.Errorf("inst %d dest = %v, want r%d", i, res.Insts[i].Dest, d)
		}
	}

	// The final xor must chain the srl strand (A3) and read R3 as a GPR:
	// the ldq result is live-out (global anyway), so the pure local wins.
	xor := res.Insts[9]
	if xor.SrcB.Kind != ildp.SrcAcc && xor.SrcA.Kind != ildp.SrcAcc {
		t.Error("final xor does not chain an accumulator")
	}
	if g := xor.GPR(); g != 3 {
		t.Errorf("final xor GPR = r%d, want r3", g)
	}

	// The loop branch tests A1 and targets the loop head.
	br := res.Insts[10]
	if br.Op != alpha.OpBNE || br.SrcA.Kind != ildp.SrcAcc || br.VAddr != 0x12000 {
		t.Errorf("loop branch wrong: %s", br.String())
	}

	// PEI table: ldbu, ldq, bne.
	if len(res.PEI) != 3 {
		t.Errorf("PEI table = %v, want 3 entries", res.PEI)
	}

	// V-credit conservation: every source instruction retires exactly once.
	credit := 0
	for i := range res.Insts {
		credit += int(res.Insts[i].VCredit)
	}
	if credit != res.SrcCount {
		t.Errorf("total VCredit = %d, want %d", credit, res.SrcCount)
	}
}

func TestFig2Basic(t *testing.T) {
	res := mustTranslate(t, fig2SB(t), Config{Form: ildp.Basic, NumAcc: 4, Chain: SWPredRAS})

	// Fig. 2c: exactly four copy-to-GPR instructions (R17<-A1, R16<-A2,
	// R3<-A0 after the ldq, R1<-A3 after the final xor).
	if res.CopyCount != 4 {
		for i := range res.Insts {
			t.Logf("%2d: %s", i, res.Insts[i].String())
		}
		t.Fatalf("CopyCount = %d, want 4", res.CopyCount)
	}
	if len(res.Insts) != 16 {
		t.Errorf("got %d instructions, want 16 (12 + 4 copies)", len(res.Insts))
	}
	// No instruction carries a destination GPR except copies and specials.
	for i := range res.Insts {
		inst := &res.Insts[i]
		if inst.Kind == ildp.KindALU || inst.Kind == ildp.KindLoad {
			if inst.Dest != alpha.RegZero {
				t.Errorf("basic-form %s carries dest", inst.String())
			}
		}
	}
	// The copies must target r17, r16, r3, r1 in that order.
	var copies []alpha.Reg
	for i := range res.Insts {
		if res.Insts[i].Kind == ildp.KindCopyToGPR {
			copies = append(copies, res.Insts[i].Dest)
		}
	}
	want := []alpha.Reg{17, 16, 3, 1}
	if len(copies) != len(want) {
		t.Fatalf("copies = %v", copies)
	}
	for i := range want {
		if copies[i] != want[i] {
			t.Errorf("copy %d targets r%d, want r%d", i, copies[i], want[i])
		}
	}
}

func TestDynamicExpansionBasicVsModified(t *testing.T) {
	sb := fig2SB(t)
	basic := mustTranslate(t, sb, Config{Form: ildp.Basic, NumAcc: 4, Chain: SWPredRAS})
	mod := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	if len(basic.Insts) <= len(mod.Insts) {
		t.Errorf("basic (%d) should expand more than modified (%d)",
			len(basic.Insts), len(mod.Insts))
	}
	// Static code bytes: modified uses wider instructions but fewer of
	// them; both should expand less than their instruction-count ratio.
	if basic.CodeBytes <= 0 || mod.CodeBytes <= 0 {
		t.Fatal("code bytes not computed")
	}
}

func TestTwoGlobalInputsGetCopyFrom(t *testing.T) {
	sb := sbFromAsm(t, `
	.text 0x1000
	addq a0, a1, v0
	ret
`, 0x1000, EndIndirect, 0)
	res := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	var sawCopyFrom bool
	for i := range res.Insts {
		if res.Insts[i].Kind == ildp.KindCopyFromGPR && res.Insts[i].Class == ildp.ClassCopy {
			sawCopyFrom = true
		}
	}
	if !sawCopyFrom {
		for i := range res.Insts {
			t.Logf("%2d: %s", i, res.Insts[i].String())
		}
		t.Error("two-global-input addq did not get a copy-from-GPR")
	}
}

func TestStoreDecomposition(t *testing.T) {
	// Non-zero displacement: address node + store node.
	sb := sbFromAsm(t, `
	.text 0x1000
	stq a1, 8(a0)
	ret
`, 0x1000, EndIndirect, 0)
	res := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	var addr, store bool
	for i := range res.Insts {
		switch res.Insts[i].Kind {
		case ildp.KindALU:
			if res.Insts[i].Class == ildp.ClassAddr {
				addr = true
			}
		case ildp.KindStore:
			store = true
			if res.Insts[i].SrcA.Kind != ildp.SrcAcc {
				t.Errorf("store address should come from the accumulator: %s", res.Insts[i].String())
			}
		}
	}
	if !addr || !store {
		t.Errorf("missing decomposition: addr=%v store=%v", addr, store)
	}

	// Zero displacement: single store, no address node.
	sb0 := sbFromAsm(t, `
	.text 0x1000
	stq a1, 0(a0)
	ret
`, 0x1000, EndIndirect, 0)
	res0 := mustTranslate(t, sb0, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	for i := range res0.Insts {
		if res0.Insts[i].Class == ildp.ClassAddr {
			t.Error("zero-displacement store emitted an address node")
		}
	}
}

func TestCMOVDecomposition(t *testing.T) {
	sb := sbFromAsm(t, `
	.text 0x1000
	cmoveq a0, a1, v0
	ret
`, 0x1000, EndIndirect, 0)
	res := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	var test, sel bool
	for i := range res.Insts {
		inst := &res.Insts[i]
		if inst.Kind == ildp.KindALU && inst.Usage == ildp.UsageTemp {
			test = true
		}
		if inst.Kind == ildp.KindCMOV {
			sel = true
			if inst.Dest != 0 {
				t.Errorf("cmov dest = r%d, want r0", inst.Dest)
			}
		}
	}
	if !test || !sel {
		t.Errorf("cmov decomposition missing: test=%v sel=%v", test, sel)
	}
}

func TestBranchReversal(t *testing.T) {
	// A taken mid-trace branch must be reversed so the hot path falls
	// through; the exit targets the original fall-through.
	sb := &Superblock{StartPC: 0x1000, End: EndMaxSize, NextPC: 0x1010}
	enc := func(w alpha.Word, err error) alpha.Word {
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	beq := alpha.Decode(enc(alpha.EncodeBranch(alpha.OpBEQ, 1, 10)))
	add := alpha.Decode(enc(alpha.EncodeOperateL(alpha.OpADDQ, 1, 1, 1)))
	sb.Insts = []SBInst{
		{PC: 0x1000, Inst: beq, Taken: true},
		// collection continued at the taken target
		{PC: 0x1000 + 4 + 40, Inst: add},
	}
	res := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	var br *ildp.Inst
	for i := range res.Insts {
		if res.Insts[i].Kind == ildp.KindCallTransCond {
			br = &res.Insts[i]
		}
	}
	if br == nil {
		t.Fatal("no conditional exit emitted")
	}
	if br.Op != alpha.OpBNE {
		t.Errorf("condition not reversed: %v", br.Op)
	}
	if br.VAddr != 0x1004 {
		t.Errorf("exit target = %#x, want fall-through 0x1004", br.VAddr)
	}
}

func TestChainingModes(t *testing.T) {
	src := `
	.text 0x1000
	addq a0, #1, v0
	ret
`
	count := func(res *Result, k ildp.Kind) int {
		n := 0
		for i := range res.Insts {
			if res.Insts[i].Kind == k {
				n++
			}
		}
		return n
	}

	sb := sbFromAsm(t, src, 0x1000, EndIndirect, 0)
	noPred := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: NoPred})
	swPred := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPred})
	swRAS := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})

	if count(noPred, ildp.KindLoadETA) != 0 || count(noPred, ildp.KindJumpRet) != 0 {
		t.Error("no_pred emitted prediction code")
	}
	if count(swPred, ildp.KindLoadETA) != 1 || count(swPred, ildp.KindJumpRet) != 0 {
		t.Error("sw_pred should use compare-and-branch for returns")
	}
	if count(swRAS, ildp.KindJumpRet) != 1 || count(swRAS, ildp.KindLoadETA) != 0 {
		t.Error("sw_pred.ras should use the dual-address RAS for returns")
	}
	// RAS returns are cheaper than compare-and-branch returns.
	if len(swRAS.Insts) >= len(swPred.Insts) {
		t.Errorf("RAS return (%d insts) not cheaper than sw_pred (%d)",
			len(swRAS.Insts), len(swPred.Insts))
	}

	// JSR must push the dual RAS in RAS mode only.
	jsrSrc := `
	.text 0x1000
	addq a0, #1, v0
	jsr (pv)
`
	sbJSR := sbFromAsm(t, jsrSrc, 0x1000, EndIndirect, 0)
	rasJSR := mustTranslate(t, sbJSR, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	plainJSR := mustTranslate(t, sbJSR, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPred})
	if count(rasJSR, ildp.KindPushRAS) != 1 {
		t.Error("RAS-mode JSR did not push the dual RAS")
	}
	if count(plainJSR, ildp.KindPushRAS) != 0 {
		t.Error("non-RAS JSR pushed the dual RAS")
	}
	if count(rasJSR, ildp.KindSaveVRA) != 1 {
		t.Error("JSR did not save the V-ISA return address")
	}
	// JSR is not a return: even in RAS mode it uses compare-and-branch.
	if count(rasJSR, ildp.KindLoadETA) != 1 {
		t.Error("RAS-mode JSR should still use software prediction")
	}
}

func TestAccumulatorExhaustionSpills(t *testing.T) {
	// Eight interleaved long-lived strands: defs first, uses later, all
	// local (each def used exactly once, no exits between).
	src := `
	.text 0x1000
	addq a0, #1, t0
	addq a0, #2, t1
	addq a0, #3, t2
	addq a0, #4, t3
	addq a0, #5, t4
	addq a0, #6, t5
	addq a0, #7, t6
	addq a0, #8, t7
	addq t0, #1, s0
	addq t1, #1, s1
	addq t2, #1, s2
	addq t3, #1, s3
	addq t4, #1, s4
	addq t5, #1, s5
	addq t6, #1, a2
	addq t7, #1, a3
	ret
`
	sb := sbFromAsm(t, src, 0x1000, EndIndirect, 0)
	four := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	eight := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 8, Chain: SWPredRAS})
	if four.SpillCount == 0 {
		t.Error("4 accumulators over 8 live strands should spill")
	}
	if eight.SpillCount != 0 {
		t.Errorf("8 accumulators spilled %d times, want 0", eight.SpillCount)
	}
	// All instructions must still be valid and within the accumulator file.
	for i := range four.Insts {
		inst := &four.Insts[i]
		if inst.Acc != ildp.NoAcc && inst.Acc >= 4 {
			t.Errorf("inst %d uses A%d with only 4 accumulators", i, inst.Acc)
		}
	}
}

func TestNOPsRemoved(t *testing.T) {
	sb := sbFromAsm(t, `
	.text 0x1000
	nop
	addq a0, #1, v0
	nop
	unop
	ret
`, 0x1000, EndIndirect, 0)
	res := mustTranslate(t, sb, Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	if res.NOPCount != 3 {
		t.Errorf("NOPCount = %d, want 3", res.NOPCount)
	}
	if res.SrcCount != 2 {
		t.Errorf("SrcCount = %d, want 2 (addq + ret)", res.SrcCount)
	}
}

func TestTranslationCostOrderOfMagnitude(t *testing.T) {
	res := mustTranslate(t, fig2SB(t), DefaultConfig())
	per := float64(res.Cost) / float64(res.SrcCount)
	// §4.2: around a thousand Alpha instructions per translated
	// instruction; well below the 4000+ of VLIW-targeting DBTs.
	if per < 300 || per > 3000 {
		t.Errorf("cost per source instruction = %.0f, want O(1000)", per)
	}
}

func TestUsageClassification(t *testing.T) {
	res := mustTranslate(t, fig2SB(t), Config{Form: ildp.Modified, NumAcc: 4, Chain: SWPredRAS})
	u := res.Usage
	// Fig 2: r17, r16, ldq-r3, final-xor-r1 are live-out; ldbu/xor/and/
	// s8addq/srl defs are local.
	if u[ildp.UsageLiveOut] != 4 {
		t.Errorf("live-out = %d, want 4 (usage=%v)", u[ildp.UsageLiveOut], u)
	}
	if u[ildp.UsageLocal] != 5 {
		t.Errorf("local = %d, want 5 (usage=%v)", u[ildp.UsageLocal], u)
	}
}

func TestEmptySuperblock(t *testing.T) {
	if _, err := Translate(&Superblock{}, DefaultConfig()); err == nil {
		t.Error("empty superblock accepted")
	}
	onlyNops := sbFromAsm(t, "\t.text 0x1000\n\tnop\n\tret\n", 0x1000, EndIndirect, 0)
	onlyNops.Insts = onlyNops.Insts[:1] // keep just the nop
	if _, err := Translate(onlyNops, DefaultConfig()); err == nil {
		t.Error("all-NOP superblock accepted")
	}
}

// TestNoUserDefBeforePEIGetsGPRHome pins exposure rule 4 (found by
// FuzzSemCheck): a def with no users keeps its value only in an
// accumulator, and that accumulator is freed at strand end — so if a
// PEI precedes the register's redefinition, the value must be copied
// to its GPR or a trap at the PEI cannot recover precise state.
func TestNoUserDefBeforePEIGetsGPRHome(t *testing.T) {
	// r17's def has no users, the ldq is a PEI inside its window, and
	// the final lda redefines r17 (so it is not live-out either).
	src := `
        .org 0x1000
        ldah r17, 0x3030(r16)
        ldq  r1, 0(r16)
        lda  r17, 8(r16)
`
	sb := sbFromAsm(t, src, 0x1000, EndMaxSize, 0x100c)
	res := mustTranslate(t, sb, Config{Form: ildp.Basic, NumAcc: 4, Chain: NoPred})
	if got := res.Usage[ildp.UsageNoUserGlobal]; got != 1 {
		t.Fatalf("no-user->global defs = %d, want 1 (usage=%v)", got, res.Usage)
	}
	// The copy must land before the PEI: at the load, r17 is current in
	// the register file, so its recovery pairs stay empty.
	sawCopy := false
	for _, inst := range res.Insts {
		if inst.Kind == ildp.KindLoad {
			if !sawCopy {
				t.Fatal("no copy-to-GPR for the no-user def before the PEI")
			}
			break
		}
		if inst.Kind == ildp.KindCopyToGPR && inst.Dest == 17 {
			sawCopy = true
		}
	}
	for i, pairs := range res.PEIRecover {
		for _, p := range pairs {
			if p.Reg == 17 {
				t.Errorf("PEI %d still expects r17 in accumulator %d", i, p.Acc)
			}
		}
	}
}

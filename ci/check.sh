#!/bin/sh
# ci/check.sh — the repository's full static + test gate. Run from the
# repository root (or via `make check` once a Makefile exists):
#
#   ./ci/check.sh
#
# Steps, in order: formatting, vet, build, the full test suite, the
# race detector over the packages with real concurrency exposure, the
# docs gate (EXPERIMENTS.md's generated block must match the committed
# report), and a small-scale smoke of the JSON report pipeline.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (vm, tcache)"
go test -race ./internal/vm/... ./internal/tcache/...

echo "== chaos smoke (short soak under the race detector)"
# A fixed-seed slice of the differential chaos oracle: fault-injected
# runs must stay bit-identical to the pure interpreter with the race
# detector watching the recovery paths. The full 50-seed sweep is
# `make chaos`; -short keeps this slice to a few seconds.
go test -race -short -run 'TestChaos|TestSelfHeal' ./internal/experiments/ ./internal/vm/
go run ./cmd/ildpchaos -seeds 4 -seed-base 1001 -machines ildp-modified

echo "== docs gate (ildpreport -check)"
go run ./cmd/ildpreport -check

echo "== json report smoke (scale-1 table2)"
go run ./cmd/ildpbench -experiment=table2 -scale=1 -json \
    | go run ./cmd/ildpreport -validate -in -

echo "== profiler smoke (ildpprof selfcheck + trace schema)"
# -selfcheck verifies cycle conservation against the timing model, that
# the hot table is sorted, and that the exported Perfetto JSON passes
# schema validation (non-empty spans, balanced flows).
prof_out=$(go run ./cmd/ildpprof -workload gzip -selfcheck -top 5)
echo "$prof_out" | grep -q "selfcheck: cycle conservation and trace schema OK" || {
    echo "ildpprof selfcheck failed:" >&2
    echo "$prof_out" >&2
    exit 1
}
echo "$prof_out" | awk '/^ *[0-9]+ +0x/ { rows++ } END { exit rows > 0 ? 0 : 1 }' || {
    echo "ildpprof hot-fragment table is empty:" >&2
    echo "$prof_out" >&2
    exit 1
}

echo "check: all clean"

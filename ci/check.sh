#!/bin/sh
# ci/check.sh — the repository's full static + test gate. Run from the
# repository root (or via `make check` once a Makefile exists):
#
#   ./ci/check.sh
#
# Steps, in order: formatting, vet, build, the full test suite, the
# race detector over the packages with real concurrency exposure, the
# docs gate (EXPERIMENTS.md's generated block must match the committed
# report), and a small-scale smoke of the JSON report pipeline.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== ildpanalyze (project linters)"
# The repository's own analyzers (internal/lint): sentinel errors flow
# through errors.Is / errors.As, and nil-safe metrics/prof hooks are
# called directly rather than behind redundant nil guards.
go run ./cmd/ildpanalyze ./internal/... ./cmd/...
# The opt-in godoc gate: every exported symbol of the cache surface
# (the per-VM cache and the shared persistent store), the telemetry
# plane, and the serving scheduler carries a doc comment.
go run ./cmd/ildpanalyze -select exporteddoc ./internal/tcache ./internal/fragstore \
    ./internal/telemetry ./internal/serve

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (vm, tcache, fragstore, metrics, telemetry, serve)"
go test -race ./internal/vm/... ./internal/tcache/... ./internal/fragstore/... \
    ./internal/metrics/... ./internal/telemetry/... ./internal/serve/...

echo "== chaos smoke (short soak under the race detector)"
# A fixed-seed slice of the differential chaos oracle: fault-injected
# runs must stay bit-identical to the pure interpreter with the race
# detector watching the recovery paths. The full 50-seed sweep is
# `make chaos`; -short keeps this slice to a few seconds.
go test -race -short -run 'TestChaos|TestSelfHeal' ./internal/experiments/ ./internal/vm/
go run ./cmd/ildpchaos -seeds 4 -seed-base 1001 -machines ildp-modified

echo "== kill-and-resume smoke (short sweep under the race detector)"
# Fixed-seed kill-and-resume runs: preempt, checkpoint, restore into a
# fresh VM, and finish bit-identical to the uninterrupted oracle. The
# full 50-seed sweep is `make killresume`.
go test -race -short -run 'TestKillResume|TestStopHook|TestBudgetIs|TestResumeFrom|TestWatchdog' \
    ./internal/experiments/ ./internal/vm/
go run ./cmd/ildpchaos -kill -seeds 4 -seed-base 5001 -machines ildp-modified

echo "== checkpoint decoder fuzz (5s)"
# The fuzz invariant: arbitrary bytes either decode to a state whose
# re-encoding is byte-identical, or fail with a typed error — never a
# panic or a half-restored state.
go test -run='^$' -fuzz=FuzzCheckpointDecode -fuzztime=5s ./internal/checkpoint/

echo "== fragstore decoder fuzz (5s)"
# Arbitrary bytes either decode to a store whose re-encoding is
# byte-identical (when nothing was dropped), or fail with a typed
# error — never a panic, and survivors always re-load drop-free.
go test -run='^$' -fuzz=FuzzFragstoreDecode -fuzztime=5s ./internal/fragstore/

echo "== semcheck fuzz (5s)"
# Arbitrary decodable superblocks through the real translator
# (straightening included) must all prove semantically equivalent.
go test -run='^$' -fuzz=FuzzSemCheck -fuzztime=5s ./internal/semcheck/

echo "== ildplint -sem smoke (reconstruct + prove installed fragments)"
sem_out=$(go run ./cmd/ildplint -workload gzip -form modified -sem)
echo "$sem_out" | grep -q " fragments proved, 0 with counterexamples" || {
    echo "ildplint -sem did not prove the gzip cache clean:" >&2
    echo "$sem_out" >&2
    exit 1
}

echo "== ildpvm checkpoint/resume round trip"
# A budget-preempted run (exit status 3) checkpoints its state; the
# resumed run must report the same final exit status and console as an
# uninterrupted run of the same workload.
ckpt_dir=$(mktemp -d)
go build -o "$ckpt_dir/ildpvm" ./cmd/ildpvm
rc=0
"$ckpt_dir/ildpvm" -workload gzip -max 100000 \
    -checkpoint "$ckpt_dir/state.ckpt" > "$ckpt_dir/seg1.txt" || rc=$?
[ "$rc" -eq 3 ] || {
    echo "preempted ildpvm run exited $rc, want the distinct status 3" >&2
    exit 1
}
grep -q "^preempted: *budget at V-PC" "$ckpt_dir/seg1.txt" || {
    echo "preempted run did not report the budget preemption:" >&2
    cat "$ckpt_dir/seg1.txt" >&2
    exit 1
}
"$ckpt_dir/ildpvm" -resume "$ckpt_dir/state.ckpt" > "$ckpt_dir/seg2.txt"
"$ckpt_dir/ildpvm" -workload gzip > "$ckpt_dir/full.txt"
resumed=$(grep '^exit status' "$ckpt_dir/seg2.txt")
full=$(grep '^exit status' "$ckpt_dir/full.txt")
if [ "$resumed" != "$full" ]; then
    echo "resumed final state differs from uninterrupted run:" >&2
    echo "  resumed: $resumed" >&2
    echo "  full:    $full" >&2
    exit 1
fi
echo "== ildpvm cache save -> reload -> re-verify round trip"
# A cold run saves the fragment store; the warm run must load it, put
# every fragment back through the verifier and the symbolic prover,
# and then retranslate nothing ("translation cost: 0 work units").
"$ckpt_dir/ildpvm" -workload gzip -cachefile "$ckpt_dir/gzip.fs" \
    -cache-stats > "$ckpt_dir/cold.txt"
grep -q "^cache file: " "$ckpt_dir/cold.txt" || {
    echo "cold run did not save a cache file:" >&2
    cat "$ckpt_dir/cold.txt" >&2
    exit 1
}
"$ckpt_dir/ildpvm" -workload gzip -cachefile "$ckpt_dir/gzip.fs" \
    -cache-stats -cache-prove > "$ckpt_dir/warm.txt"
grep -q "0 dropped (crc 0, key 0, malformed 0, verify 0, prove 0)" "$ckpt_dir/warm.txt" || {
    echo "warm run dropped loaded fragments:" >&2
    cat "$ckpt_dir/warm.txt" >&2
    exit 1
}
grep -q "^translation cost: *0 work units" "$ckpt_dir/warm.txt" || {
    echo "warm run retranslated instead of hitting the loaded store:" >&2
    cat "$ckpt_dir/warm.txt" >&2
    exit 1
}
warm_exit=$(grep '^exit status' "$ckpt_dir/warm.txt")
full_exit=$(grep '^exit status' "$ckpt_dir/full.txt")
if [ "$warm_exit" != "$full_exit" ]; then
    echo "warm-cache final state differs from the store-less run:" >&2
    echo "  warm: $warm_exit" >&2
    echo "  full: $full_exit" >&2
    exit 1
fi
echo "== ildpvm serve smoke (telemetry plane over HTTP)"
# A serving run must report its address on stdout, answer the health
# probes, expose live nonzero vm.* samples in Prometheus text format,
# and replay at least one SSE metrics event — then shut down cleanly on
# SIGTERM.
"$ckpt_dir/ildpvm" -workload gzip -serve 127.0.0.1:0 \
    > "$ckpt_dir/serve.txt" 2> "$ckpt_dir/serve.log" &
serve_pid=$!
port=""
for _ in $(seq 1 50); do
    port=$(sed -n 's#^telemetry: *serving on http://127\.0\.0\.1:##p' "$ckpt_dir/serve.txt")
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || {
    echo "serving ildpvm never reported its address:" >&2
    cat "$ckpt_dir/serve.txt" "$ckpt_dir/serve.log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
curl -fsS "http://127.0.0.1:$port/healthz" > /dev/null
curl -fsS "http://127.0.0.1:$port/readyz" > /dev/null
serve_ok=0
for _ in $(seq 1 50); do
    metrics_out=$(curl -fsS "http://127.0.0.1:$port/metrics?wait=100")
    if echo "$metrics_out" | awk '/^vm_interp_insts\{/ { if ($NF + 0 > 0) ok = 1 } END { exit ok ? 0 : 1 }'; then
        serve_ok=1
        break
    fi
    sleep 0.1
done
[ "$serve_ok" -eq 1 ] || {
    echo "serving ildpvm never exposed nonzero vm_interp_insts samples:" >&2
    echo "$metrics_out" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
sse_out=$(curl -sN -m 2 "http://127.0.0.1:$port/events?replay=4" || true)
echo "$sse_out" | grep -q "^event: metrics" || {
    echo "SSE replay returned no metrics events:" >&2
    echo "$sse_out" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
rm -rf "$ckpt_dir"

echo "== ildpserve smoke (submit two guests, drain mid-run, resume)"
# The serving scheduler end to end over real HTTP and real signals:
# two guests submitted to a fresh server must finish with exit status
# and total retired V-instruction count identical to uninterrupted
# ildpvm runs; a long guest still in flight when SIGTERM lands must be
# preempted at a V-instruction boundary, checkpointed into the spill
# directory, re-admitted by a successor server via -resume-dir, and
# still finish identical to its uninterrupted run.
srv_dir=$(mktemp -d)
go build -o "$srv_dir/ildpserve" ./cmd/ildpserve
go build -o "$srv_dir/ildpvm" ./cmd/ildpvm

# jfield FILE KEY -> value of the first `"KEY": value` in indented JSON.
jfield() {
    sed -n 's/^ *"'"$2"'": "\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1/p' "$1" | head -n 1
}
# vmline WORKLOAD SCALE -> "exitstatus vinsts" from an uninterrupted run.
vmline() {
    "$srv_dir/ildpvm" -workload "$1" -scale "$2" | awk '
        /^exit status:/ { sub(",", "", $3); ex = $3 }
        /^V-insts total:/ { v = $3 }
        END { print ex, v }'
}

"$srv_dir/ildpserve" -addr 127.0.0.1:0 -quantum 20000 -spill "$srv_dir/spill" \
    > "$srv_dir/srv1.txt" 2> "$srv_dir/srv1.log" &
srv_pid=$!
sport=""
for _ in $(seq 1 50); do
    sport=$(sed -n 's#^serving: *http://127\.0\.0\.1:##p' "$srv_dir/srv1.txt")
    [ -n "$sport" ] && break
    sleep 0.1
done
[ -n "$sport" ] || {
    echo "ildpserve never reported its address:" >&2
    cat "$srv_dir/srv1.txt" "$srv_dir/srv1.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
surl="http://127.0.0.1:$sport"

for w in gap mcf; do
    curl -fsS -X POST "$surl/sessions?workload=$w" > "$srv_dir/sub.json"
    sid=$(jfield "$srv_dir/sub.json" id)
    for _ in $(seq 1 100); do
        curl -fsS "$surl/sessions/$sid?wait=2000" > "$srv_dir/view.json"
        st=$(jfield "$srv_dir/view.json" state)
        case "$st" in queued|running|ready) continue ;; esac
        break
    done
    [ "$st" = "done" ] || {
        echo "served $w session ended in state $st:" >&2
        cat "$srv_dir/view.json" >&2
        kill "$srv_pid" 2>/dev/null || true
        exit 1
    }
    got="$(jfield "$srv_dir/view.json" exit_status) $(jfield "$srv_dir/view.json" v_insts)"
    want=$(vmline "$w" 1)
    if [ "$got" != "$want" ]; then
        echo "served $w diverged from uninterrupted ildpvm run:" >&2
        echo "  served (exit v-insts): $got" >&2
        echo "  ildpvm (exit v-insts): $want" >&2
        kill "$srv_pid" 2>/dev/null || true
        exit 1
    fi
done

# A long guest: SIGTERM must land while it is still mid-run.
curl -fsS -X POST "$surl/sessions?workload=vpr&scale=50" > "$srv_dir/sub.json"
vid=$(jfield "$srv_dir/sub.json" id)
started=0
for _ in $(seq 1 100); do
    curl -fsS "$surl/sessions/$vid" > "$srv_dir/view.json"
    if [ "$(jfield "$srv_dir/view.json" quanta)" -ge 1 ] 2>/dev/null; then
        started=1
        break
    fi
    sleep 0.05
done
[ "$started" -eq 1 ] || {
    echo "vpr session never started a quantum" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
kill -TERM "$srv_pid"
wait "$srv_pid" || {
    echo "draining ildpserve exited nonzero:" >&2
    cat "$srv_dir/srv1.txt" "$srv_dir/srv1.log" >&2
    exit 1
}
grep -q "^drained: *1 sessions spilled" "$srv_dir/srv1.txt" || {
    echo "drain did not spill the in-flight session:" >&2
    cat "$srv_dir/srv1.txt" >&2
    exit 1
}

# Successor: re-admit the spilled session and run it to completion.
"$srv_dir/ildpserve" -addr 127.0.0.1:0 -quantum 20000 -spill "$srv_dir/spill" \
    -resume-dir "$srv_dir/spill" \
    > "$srv_dir/srv2.txt" 2> "$srv_dir/srv2.log" &
srv_pid=$!
sport=""
for _ in $(seq 1 50); do
    sport=$(sed -n 's#^serving: *http://127\.0\.0\.1:##p' "$srv_dir/srv2.txt")
    [ -n "$sport" ] && break
    sleep 0.1
done
[ -n "$sport" ] || {
    echo "successor ildpserve never reported its address:" >&2
    cat "$srv_dir/srv2.txt" "$srv_dir/srv2.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
surl="http://127.0.0.1:$sport"
grep -q "^resumed: *1 sessions (0 corrupt)" "$srv_dir/srv2.txt" || {
    echo "successor did not resume the spilled session:" >&2
    cat "$srv_dir/srv2.txt" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
curl -fsS "$surl/sessions" > "$srv_dir/list.json"
rid=$(jfield "$srv_dir/list.json" id)
for _ in $(seq 1 200); do
    curl -fsS "$surl/sessions/$rid?wait=2000" > "$srv_dir/view.json"
    st=$(jfield "$srv_dir/view.json" state)
    case "$st" in queued|running|ready) continue ;; esac
    break
done
[ "$st" = "done" ] || {
    echo "resumed session ended in state $st:" >&2
    cat "$srv_dir/view.json" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
got="$(jfield "$srv_dir/view.json" exit_status) $(jfield "$srv_dir/view.json" v_insts)"
want=$(vmline vpr 50)
if [ "$got" != "$want" ]; then
    echo "drained+resumed vpr diverged from uninterrupted ildpvm run:" >&2
    echo "  served (exit v-insts): $got" >&2
    echo "  ildpvm (exit v-insts): $want" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
rm -rf "$srv_dir"

echo "== disk-chaos smoke (ildpserve under injected ENOSPC on the spill path)"
# Every spill write fails with injected ENOSPC (-io-chaos rate 1).
# The server must keep serving healthy guests bit-identical to their
# uninterrupted runs, degrade each failed persistence operation into a
# typed, logged fault, and still complete a SIGTERM drain with exit 0
# — the in-flight session becomes a typed failure, not a hang and not
# a torn file.
chaos_dir=$(mktemp -d)
go build -o "$chaos_dir/ildpserve" ./cmd/ildpserve
go build -o "$chaos_dir/ildpvm" ./cmd/ildpvm
go build -o "$chaos_dir/ildpchaos" ./cmd/ildpchaos
vmline() {
    "$chaos_dir/ildpvm" -workload "$1" -scale "$2" | awk '
        /^exit status:/ { sub(",", "", $3); ex = $3 }
        /^V-insts total:/ { v = $3 }
        END { print ex, v }'
}
"$chaos_dir/ildpserve" -addr 127.0.0.1:0 -quantum 20000 -max-resident 1 \
    -spill "$chaos_dir/spill" -io-chaos 7 -io-chaos-rate 1 -io-chaos-kinds enospc \
    > "$chaos_dir/srv.txt" 2> "$chaos_dir/srv.log" &
srv_pid=$!
sport=""
for _ in $(seq 1 50); do
    sport=$(sed -n 's#^serving: *http://127\.0\.0\.1:##p' "$chaos_dir/srv.txt")
    [ -n "$sport" ] && break
    sleep 0.1
done
[ -n "$sport" ] || {
    echo "chaos ildpserve never reported its address:" >&2
    cat "$chaos_dir/srv.txt" "$chaos_dir/srv.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
surl="http://127.0.0.1:$sport"
# A long guest to be mid-flight at SIGTERM...
curl -fsS -X POST "$surl/sessions?workload=vpr&scale=50" > "$chaos_dir/sub.json"
vid=$(jfield "$chaos_dir/sub.json" id)
for _ in $(seq 1 100); do
    curl -fsS "$surl/sessions/$vid" > "$chaos_dir/view.json"
    [ "$(jfield "$chaos_dir/view.json" quanta)" -ge 1 ] 2>/dev/null && break
    sleep 0.05
done
# ...and a healthy sibling that must finish exactly despite the chaos.
curl -fsS -X POST "$surl/sessions?workload=mcf" > "$chaos_dir/sub.json"
sid=$(jfield "$chaos_dir/sub.json" id)
for _ in $(seq 1 100); do
    curl -fsS "$surl/sessions/$sid?wait=2000" > "$chaos_dir/view.json"
    st=$(jfield "$chaos_dir/view.json" state)
    case "$st" in queued|running|ready) continue ;; esac
    break
done
[ "$st" = "done" ] || {
    echo "healthy mcf session under disk chaos ended in state $st:" >&2
    cat "$chaos_dir/view.json" "$chaos_dir/srv.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
got="$(jfield "$chaos_dir/view.json" exit_status) $(jfield "$chaos_dir/view.json" v_insts)"
want=$(vmline mcf 1)
if [ "$got" != "$want" ]; then
    echo "mcf under disk chaos diverged from uninterrupted ildpvm run:" >&2
    echo "  served (exit v-insts): $got" >&2
    echo "  ildpvm (exit v-insts): $want" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$srv_pid"
wait "$srv_pid" || {
    echo "draining chaos ildpserve exited nonzero:" >&2
    cat "$chaos_dir/srv.txt" "$chaos_dir/srv.log" >&2
    exit 1
}
grep -q "^drained: *0 sessions spilled" "$chaos_dir/srv.txt" || {
    echo "full-ENOSPC drain claimed to spill sessions:" >&2
    cat "$chaos_dir/srv.txt" >&2
    exit 1
}
grep -q 'persistence fault.*drain spill' "$chaos_dir/srv.log" || {
    echo "drain under ENOSPC logged no typed persistence fault:" >&2
    cat "$chaos_dir/srv.log" >&2
    exit 1
}

echo "== memory-bomb smoke (typed resource kill, sibling bit-identical, bundle replay)"
# The membomb guest strides stores across fresh pages; under -max-pages
# it must die with a precise typed resource trap (exit status 2), its
# failure must be recorded as a flight bundle, and ildpchaos -replay
# must re-execute that bundle to the bit-identical failure.
rc=0
"$chaos_dir/ildpvm" -workload membomb -max-pages 64 \
    -bundle "$chaos_dir/bomb.bundle" \
    > "$chaos_dir/bomb.txt" 2> "$chaos_dir/bomb.log" || rc=$?
[ "$rc" -eq 2 ] || {
    echo "governed membomb exited $rc, want the trap status 2" >&2
    cat "$chaos_dir/bomb.txt" "$chaos_dir/bomb.log" >&2
    exit 1
}
grep -q "memory resource fault" "$chaos_dir/bomb.log" || {
    echo "governed membomb died without a typed resource fault:" >&2
    cat "$chaos_dir/bomb.log" >&2
    exit 1
}
"$chaos_dir/ildpchaos" -replay "$chaos_dir/bomb.bundle" > "$chaos_dir/replay.txt" || {
    echo "bundle replay diverged from the recorded failure:" >&2
    cat "$chaos_dir/replay.txt" >&2
    exit 1
}
grep -q "reproduced the resource failure bit-identically" "$chaos_dir/replay.txt" || {
    echo "bundle replay did not report the bit-identical verdict:" >&2
    cat "$chaos_dir/replay.txt" >&2
    exit 1
}
# The served flavour: the bomb is killed typed while a sibling tenant's
# guest finishes bit-identical to its oracle, and the server records a
# replayable bundle for the kill.
"$chaos_dir/ildpserve" -addr 127.0.0.1:0 -quantum 10000 -max-pages 64 \
    -bundle-dir "$chaos_dir/bundles" \
    > "$chaos_dir/gov.txt" 2> "$chaos_dir/gov.log" &
srv_pid=$!
sport=""
for _ in $(seq 1 50); do
    sport=$(sed -n 's#^serving: *http://127\.0\.0\.1:##p' "$chaos_dir/gov.txt")
    [ -n "$sport" ] && break
    sleep 0.1
done
[ -n "$sport" ] || {
    echo "governed ildpserve never reported its address:" >&2
    cat "$chaos_dir/gov.txt" "$chaos_dir/gov.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
surl="http://127.0.0.1:$sport"
curl -fsS -X POST "$surl/sessions?workload=membomb&tenant=bomber" > "$chaos_dir/sub.json"
bid=$(jfield "$chaos_dir/sub.json" id)
curl -fsS -X POST "$surl/sessions?workload=gap&tenant=calm" > "$chaos_dir/sub.json"
gid=$(jfield "$chaos_dir/sub.json" id)
for _ in $(seq 1 100); do
    curl -fsS "$surl/sessions/$bid?wait=2000" > "$chaos_dir/bomb.json"
    st=$(jfield "$chaos_dir/bomb.json" state)
    case "$st" in queued|running|ready) continue ;; esac
    break
done
[ "$st" = "failed" ] || {
    echo "served membomb ended in state $st, want failed:" >&2
    cat "$chaos_dir/bomb.json" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
grep -q '"error": "resource:' "$chaos_dir/bomb.json" || {
    echo "served membomb failure is not a typed resource kill:" >&2
    cat "$chaos_dir/bomb.json" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
for _ in $(seq 1 100); do
    curl -fsS "$surl/sessions/$gid?wait=2000" > "$chaos_dir/gap.json"
    st=$(jfield "$chaos_dir/gap.json" state)
    case "$st" in queued|running|ready) continue ;; esac
    break
done
[ "$st" = "done" ] || {
    echo "sibling gap session ended in state $st:" >&2
    cat "$chaos_dir/gap.json" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
got="$(jfield "$chaos_dir/gap.json" exit_status) $(jfield "$chaos_dir/gap.json" v_insts)"
want=$(vmline gap 1)
if [ "$got" != "$want" ]; then
    echo "sibling gap diverged from uninterrupted ildpvm run:" >&2
    echo "  served (exit v-insts): $got" >&2
    echo "  ildpvm (exit v-insts): $want" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
fi
[ -f "$chaos_dir/bundles/$bid.bundle" ] || {
    echo "governed server recorded no bundle for the resource kill" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
"$chaos_dir/ildpchaos" -replay "$chaos_dir/bundles/$bid.bundle" > "$chaos_dir/replay2.txt" || {
    echo "served kill's bundle replay diverged:" >&2
    cat "$chaos_dir/replay2.txt" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
kill -TERM "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
rm -rf "$chaos_dir"

echo "== docs gate (ildpreport -check)"
go run ./cmd/ildpreport -check

echo "== json report smoke (scale-1 table2)"
go run ./cmd/ildpbench -experiment=table2 -scale=1 -json \
    | go run ./cmd/ildpreport -validate -in -

echo "== serving load smoke (ildpload -> ildpreport)"
go run ./cmd/ildpload -sessions 24 -clients 8 -workers 4 -verify 8 -json \
    | go run ./cmd/ildpreport -validate -in -

echo "== profiler smoke (ildpprof selfcheck + trace schema)"
# -selfcheck verifies cycle conservation against the timing model, that
# the hot table is sorted, and that the exported Perfetto JSON passes
# schema validation (non-empty spans, balanced flows).
prof_out=$(go run ./cmd/ildpprof -workload gzip -selfcheck -top 5)
echo "$prof_out" | grep -q "selfcheck: cycle conservation and trace schema OK" || {
    echo "ildpprof selfcheck failed:" >&2
    echo "$prof_out" >&2
    exit 1
}
echo "$prof_out" | awk '/^ *[0-9]+ +0x/ { rows++ } END { exit rows > 0 ? 0 : 1 }' || {
    echo "ildpprof hot-fragment table is empty:" >&2
    echo "$prof_out" >&2
    exit 1
}

echo "check: all clean"

#!/bin/sh
# ci/check.sh — the repository's full static + test gate. Run from the
# repository root (or via `make check` once a Makefile exists):
#
#   ./ci/check.sh
#
# Steps, in order: formatting, vet, build, the full test suite, and the
# race detector over the packages with real concurrency exposure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (vm, tcache)"
go test -race ./internal/vm/... ./internal/tcache/...

echo "check: all clean"

# Convenience targets; ci/check.sh is the canonical gate.

.PHONY: build test check lint-example semcheck experiments profile chaos killresume fragstore telemetry monitor serve serve-report

build:
	go build ./...

test:
	go test ./...

check:
	./ci/check.sh

# Demonstrate the fragment linter on a workload (exit 0 = all invariants hold).
lint-example:
	go run ./cmd/ildplint -workload gzip -form basic -chain sw_pred.ras

# Prove every fragment the 12 workloads translate (all three machine
# forms) equivalent to its source superblock, then run the repository's
# own Go linters over the tree.
semcheck:
	go test -run 'TestWorkloadsProveAll|TestSemanticMutationsRejected' ./internal/semcheck/
	go run ./cmd/ildpanalyze ./internal/... ./cmd/...

# Regenerate the committed experiment report, EXPERIMENTS.md's generated
# block, and the BENCH_experiments.json trajectory (~12s of simulation).
experiments:
	go run ./cmd/ildpbench -experiment=all -scale=2 -json > reports/experiments-scale2.json
	go run ./cmd/ildpreport -write

# Profile a workload end to end: hot-fragment table on stdout, Perfetto
# timeline and folded flamegraph stacks under reports/.
profile:
	go run ./cmd/ildpprof -workload gzip -selfcheck -top 20 \
		-trace reports/gzip-trace.json -folded reports/gzip.folded

# Sweep the differential chaos oracle: 50 seeded fault schedules across
# all four machines, each run compared bit-for-bit against the pure
# interpreter. Exit 0 means every fault was recovered transparently.
chaos:
	go run ./cmd/ildpchaos -seeds 50

# Sweep the kill-and-resume harness: 50 seeded runs across all four
# machines, each preempted at seed-chosen points, checkpointed through
# the full encode/decode path, and resumed in a fresh VM. Exit 0 means
# every resumed run finished bit-identical to the uninterrupted oracle.
killresume:
	go run ./cmd/ildpchaos -kill -seeds 50

# Exercise the telemetry plane end to end: the package test suite (race
# detector on — fan-out, slow-consumer shedding, zero-perturbation
# equivalence, the soak) plus the attach-cost benchmark recorded in
# EXPERIMENTS.md note 13.
telemetry:
	go test -race ./internal/telemetry/ -count 1
	go test -run '^$$' -bench BenchmarkTelemetryOverhead -benchtime 10x ./internal/telemetry/

# Run the live soak monitor: a continuous chaos sweep with the
# telemetry plane on http://127.0.0.1:9844 (interrupt to stop).
monitor:
	go run ./cmd/ildpmon -addr 127.0.0.1:9844

# Exercise the serving plane end to end: the scheduler test suite
# (race detector on — admission, quotas, kill, crash barrier, spill,
# drain/resume, and the 200-session differential soak) plus a verified
# load drive through the real HTTP surface.
serve:
	go test -race ./internal/serve/ -count 1
	go run ./cmd/ildpload -sessions 60 -clients 16 -verify 10

# Regenerate the committed serving-benchmark report cited by
# EXPERIMENTS.md note 14 (200 sessions over 32 clients, every 10th
# final checkpoint differentially verified).
serve-report:
	go run ./cmd/ildpload -sessions 200 -clients 32 -workers 8 -verify 10 -json \
		> reports/serve-load.json
	go run ./cmd/ildpreport -validate -in reports/serve-load.json

# Exercise the persistent fragment store end to end: the store and VM
# test suites (race detector on), a decoder fuzz slice, and a cold ->
# warm ildpvm run through the on-disk format (docs/FORMAT.md) with
# every loaded fragment re-verified and re-proved.
fragstore:
	go test -race ./internal/fragstore/ -run 'Test' -count 1
	go test -race ./internal/vm/ -run 'TestStore' -count 1
	go test -run='^$$' -fuzz=FuzzFragstoreDecode -fuzztime=5s ./internal/fragstore/
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	go build -o "$$tmp/ildpvm" ./cmd/ildpvm; \
	"$$tmp/ildpvm" -workload gzip -cachefile "$$tmp/gzip.fs" -cache-stats | grep '^cache'; \
	"$$tmp/ildpvm" -workload gzip -cachefile "$$tmp/gzip.fs" -cache-stats -cache-prove \
	    | tee /dev/stderr | grep -q '^translation cost: *0 work units' \
	    || { echo "warm run retranslated"; exit 1; }

# Convenience targets; ci/check.sh is the canonical gate.

.PHONY: build test check lint-example

build:
	go build ./...

test:
	go test ./...

check:
	./ci/check.sh

# Demonstrate the fragment linter on a workload (exit 0 = all invariants hold).
lint-example:
	go run ./cmd/ildplint -workload gzip -form basic -chain sw_pred.ras

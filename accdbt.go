// Package accdbt is a complete reimplementation of the co-designed virtual
// machine of Kim & Smith, "Dynamic Binary Translation for
// Accumulator-Oriented Architectures" (CGO 2003).
//
// The library contains every system the paper builds on:
//
//   - an Alpha (EV6 integer subset) instruction set with encoder, decoder,
//     disassembler, text assembler, and functional interpreter;
//   - the accumulator-oriented implementation ISA in both its Basic and
//     Modified forms, including the co-designed VM special instructions
//     (set-VPC, load-embedded-target-address, save-V-ISA-return-address,
//     push-dual-address-RAS);
//   - the dynamic binary translator: MRET superblock collection,
//     dependence/usage classification, strand formation, linear-scan
//     accumulator assignment, precise-trap tables, and the three fragment
//     chaining schemes of §4.3;
//   - the VM runtime with interpret/translate/execute mode switching, a
//     translation cache with fragment linking and patching, the
//     architecturally-visible dual-address return address stack, and the
//     shared dispatch routine;
//   - trace-driven timing models of the idealised out-of-order superscalar
//     and the ILDP distributed microarchitecture of Table 1;
//   - twelve synthetic SPEC CPU2000 INT stand-in workloads plus experiment
//     drivers that regenerate every table and figure of the evaluation; and
//   - an observability layer: a metrics registry (counters, gauges,
//     histograms, per-fragment lifecycle events) that taps the VM,
//     translation cache, and timing models without changing results, and
//     a versioned machine-readable experiment report (DESIGN.md §8).
//
// This package is a façade over the internal implementation packages; it
// exposes everything a downstream user needs through type aliases and
// constructor functions.
//
// # Quick start
//
//	prog := accdbt.MustAssemble(src)          // assemble Alpha source
//	v := accdbt.NewVM(accdbt.NewMemory(), accdbt.DefaultVMConfig())
//	_ = v.LoadProgram(prog)
//	_ = v.Run(0)                              // interpret + translate + execute
//	fmt.Println(v.Stats.Fragments, "fragments translated")
package accdbt

import (
	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iverify"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/report"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/trace"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/uarch"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// Source (V-ISA) machinery.
type (
	// Program is a loadable Alpha memory image with an entry point.
	Program = alphaprog.Program
	// AlphaInst is one decoded Alpha instruction.
	AlphaInst = alpha.Inst
	// CPU is the architected Alpha state plus functional interpreter.
	CPU = emu.CPU
	// Memory is the sparse 64-bit memory shared by interpreter and VM.
	Memory = mem.Memory
	// Trap is a precise architectural trap.
	Trap = emu.Trap
)

// Assemble assembles Alpha source text (see internal/alpha/alphaasm for
// the syntax).
func Assemble(src string) (*Program, error) { return alphaasm.Assemble(src) }

// MustAssemble is Assemble that panics on error.
func MustAssemble(src string) *Program { return alphaasm.MustAssemble(src) }

// DecodeAlpha decodes a raw 32-bit Alpha instruction word.
func DecodeAlpha(word uint32) AlphaInst { return alpha.Decode(alpha.Word(word)) }

// DisassembleAlpha renders a raw instruction word at pc.
func DisassembleAlpha(word uint32, pc uint64) string {
	return alpha.DisassembleWord(alpha.Word(word), pc)
}

// NewMemory returns an empty relaxed-mode memory.
func NewMemory() *Memory { return mem.New() }

// NewCPU returns a bare Alpha interpreter over m.
func NewCPU(m *Memory) *CPU { return emu.New(m) }

// Implementation (I-ISA) machinery.
type (
	// Form selects the Basic or Modified accumulator ISA.
	Form = ildp.Form
	// IInst is one I-ISA instruction.
	IInst = ildp.Inst
	// Fragment is a translated superblock in the translation cache.
	Fragment = tcache.Fragment
)

// I-ISA forms.
const (
	Basic    = ildp.Basic
	Modified = ildp.Modified
)

// Translation machinery.
type (
	// ChainMode selects the fragment-chaining implementation.
	ChainMode = translate.ChainMode
	// Superblock is a collected hot trace.
	Superblock = translate.Superblock
	// SBInst is one V-ISA instruction of a superblock.
	SBInst = translate.SBInst
	// TranslateConfig controls a single translation.
	TranslateConfig = translate.Config
	// Translation is the result of translating one superblock.
	Translation = translate.Result
)

// Chaining modes (§4.3).
const (
	NoPred    = translate.NoPred
	SWPred    = translate.SWPred
	SWPredRAS = translate.SWPredRAS
)

// Translate translates one superblock to the accumulator I-ISA.
func Translate(sb *Superblock, cfg TranslateConfig) (*Translation, error) {
	return translate.Translate(sb, cfg)
}

// Straighten performs the code-straightening-only translation.
func Straighten(sb *Superblock, chain ChainMode) (*Translation, error) {
	return translate.Straighten(sb, chain)
}

// Fragment verification.
type (
	// VerifyConfig parameterises fragment verification.
	VerifyConfig = iverify.Config
	// VerifyReport is the outcome of verifying one fragment.
	VerifyReport = iverify.Report
	// VerifyRule identifies one verifier rule (E1..E6, D1..D3, P1..P4,
	// C1..C5).
	VerifyRule = iverify.Rule
	// VerifyViolation is one structured diagnostic.
	VerifyViolation = iverify.Violation
)

// VerifyTranslation statically checks a translation result against the
// paper's accumulator invariants without executing it.
func VerifyTranslation(res *Translation, cfg VerifyConfig) *VerifyReport {
	return iverify.Verify(res, cfg)
}

// VerifyFragment statically checks an installed translation-cache
// fragment; set cfg.ResolveFrag to also validate its patched links.
func VerifyFragment(f *Fragment, cfg VerifyConfig) *VerifyReport {
	return iverify.Check(iverify.FromFragment(f), cfg)
}

// VerifyRules lists every verifier rule.
func VerifyRules() []VerifyRule { return iverify.Rules() }

// VM runtime.
type (
	// VM is the co-designed virtual machine.
	VM = vm.VM
	// VMConfig controls the VM.
	VMConfig = vm.Config
	// VMStats aggregates dynamic execution statistics.
	VMStats = vm.Stats
)

// DefaultVMConfig returns the paper's baseline VM configuration.
func DefaultVMConfig() VMConfig { return vm.DefaultConfig() }

// NewVM creates a co-designed VM over m.
func NewVM(m *Memory, cfg VMConfig) *VM { return vm.New(m, cfg) }

// Trace and timing.
type (
	// TraceRec is one committed dynamic instruction.
	TraceRec = trace.Rec
	// TraceSink consumes a committed-instruction stream.
	TraceSink = trace.Sink
	// MachineConfig carries Table 1 machine parameters.
	MachineConfig = uarch.Config
	// TimingResult summarises a timing-model run.
	TimingResult = uarch.Result
	// OoO is the out-of-order superscalar timing model.
	OoO = uarch.OoO
	// ILDPCore is the distributed accumulator microarchitecture model.
	ILDPCore = uarch.ILDP
)

// DefaultOoOConfig returns the paper's superscalar baseline parameters.
func DefaultOoOConfig() MachineConfig { return uarch.DefaultOoO() }

// DefaultILDPConfig returns the paper's baseline ILDP parameters.
func DefaultILDPConfig() MachineConfig { return uarch.DefaultILDP() }

// NewOoO builds a superscalar timing model.
func NewOoO(cfg MachineConfig) *OoO { return uarch.NewOoO(cfg) }

// NewILDPCore builds an ILDP timing model.
func NewILDPCore(cfg MachineConfig) *ILDPCore { return uarch.NewILDP(cfg) }

// Workloads and experiments.
type (
	// Workload is one synthetic SPEC CPU2000 INT stand-in.
	Workload = workload.Spec
	// RunSpec describes one simulation run.
	RunSpec = experiments.RunSpec
	// Outcome is one simulation result.
	Outcome = experiments.Outcome
	// Machine selects one of the four simulated machines.
	Machine = experiments.Machine
)

// Simulated machines.
const (
	MachineOriginal     = experiments.Original
	MachineStraightened = experiments.Straightened
	MachineILDPBasic    = experiments.ILDPBasic
	MachineILDPModified = experiments.ILDPModified
)

// Workloads returns all twelve workloads at the given scale.
func Workloads(scale int) []*Workload { return workload.All(scale) }

// WorkloadByName generates one workload.
func WorkloadByName(name string, scale int) (*Workload, error) {
	return workload.ByName(name, scale)
}

// WorkloadNames lists the available workloads.
func WorkloadNames() []string { return workload.Names() }

// RunExperiment executes one simulation run.
func RunExperiment(spec RunSpec) (*Outcome, error) { return experiments.Run(spec) }

// Observability (DESIGN.md §8).
type (
	// MetricsRegistry collects counters, gauges, histograms, and
	// fragment lifecycle events; attach one via VMConfig.Metrics or
	// RunSpec.Metrics. All methods are safe on a nil registry, so
	// instrumentation costs one nil check when disabled.
	MetricsRegistry = metrics.Registry
	// MetricsEvent is one fragment lifecycle event (translate, verify,
	// install, chain, evict).
	MetricsEvent = metrics.Event
	// MetricsSnapshot is a registry's deterministic point-in-time state.
	MetricsSnapshot = metrics.Snapshot
	// ExperimentReport is the versioned machine-readable report that
	// `ildpbench -json` emits and `ildpreport` consumes.
	ExperimentReport = report.Report
	// ReportOptions parameterises RunReport.
	ReportOptions = report.RunOptions
)

// NewMetricsRegistry returns an empty, concurrency-safe registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// RunReport executes experiments and assembles their machine-readable
// report (one record per paper table/figure cell plus run metadata).
func RunReport(opts ReportOptions) (*ExperimentReport, error) { return report.Run(opts) }

// DecodeReport parses and schema-validates a report produced by
// `ildpbench -json` or RunReport.
func DecodeReport(data []byte) (*ExperimentReport, error) { return report.Decode(data) }

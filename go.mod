module github.com/ildp/accdbt

go 1.22

package accdbt_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus throughput
// microbenchmarks for the main pipeline stages. The experiment benchmarks
// regenerate the corresponding result at test scale each iteration; custom
// metrics report the headline number of each experiment so the shape is
// visible straight from the bench output.

import (
	"errors"
	"testing"

	"github.com/ildp/accdbt"
	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/stats"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/uarch"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

const (
	benchScale     = 1
	benchThreshold = 25
)

// BenchmarkTable2Translate regenerates Table 2 (translated-instruction
// statistics for the Basic and Modified ISAs).
func BenchmarkTable2Translate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchScale, benchThreshold)
		var dm []float64
		for _, r := range rows {
			dm = append(dm, r.RelDynM)
		}
		b.ReportMetric(stats.Mean(dm), "modified-expansion")
	}
}

// BenchmarkOverhead regenerates the §4.2 translation-overhead measurement.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Overhead(benchScale, benchThreshold)
		var per []float64
		for _, r := range rows {
			per = append(per, r.PerInst)
		}
		b.ReportMetric(stats.Mean(per), "insts/translated-inst")
	}
}

// BenchmarkFig4Chaining regenerates Figure 4 (mispredictions per 1000
// instructions under the three chaining schemes).
func BenchmarkFig4Chaining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(benchScale, benchThreshold)
		var np, ras []float64
		for _, r := range rows {
			np = append(np, r.NoPred)
			ras = append(ras, r.SWPredRAS)
		}
		b.ReportMetric(stats.Mean(np), "no_pred-mispred/1k")
		b.ReportMetric(stats.Mean(ras), "sw_pred.ras-mispred/1k")
	}
}

// BenchmarkFig5Expansion regenerates Figure 5 (relative instruction count
// from chaining).
func BenchmarkFig5Expansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(benchScale, benchThreshold)
		var ras []float64
		for _, r := range rows {
			ras = append(ras, r.SWPredRAS)
		}
		b.ReportMetric(stats.Mean(ras), "rel-inst-count")
	}
}

// BenchmarkFig6Straightening regenerates Figure 6 (code straightening and
// hardware RAS IPC study).
func BenchmarkFig6Straightening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(benchScale, benchThreshold)
		var orig, str []float64
		for _, r := range rows {
			orig = append(orig, r.OrigRAS)
			str = append(str, r.StraightRAS)
		}
		b.ReportMetric(stats.GeoMean(str)/stats.GeoMean(orig), "straightened/original")
	}
}

// BenchmarkFig7Usage regenerates Figure 7 (output register usage).
func BenchmarkFig7Usage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchScale, benchThreshold)
		var g []float64
		for _, r := range rows {
			g = append(g, r.GlobalFraction())
		}
		b.ReportMetric(stats.Mean(g), "global-fraction")
	}
}

// BenchmarkFig8IPC regenerates Figure 8 (the headline IPC comparison).
func BenchmarkFig8IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(benchScale, benchThreshold)
		var mod, str []float64
		for _, r := range rows {
			mod = append(mod, r.Modified)
			str = append(str, r.Straight)
		}
		b.ReportMetric(stats.GeoMean(mod), "modified-IPC")
		b.ReportMetric(stats.GeoMean(mod)/stats.GeoMean(str), "modified/straightened")
	}
}

// BenchmarkFig9Sweep regenerates Figure 9 (machine-parameter sensitivity).
func BenchmarkFig9Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(benchScale, benchThreshold)
		var base, p4 []float64
		for _, r := range rows {
			base = append(base, r.Base)
			p4 = append(p4, r.PE4)
		}
		b.ReportMetric(stats.GeoMean(base), "base-IPC")
		b.ReportMetric(stats.GeoMean(p4)/stats.GeoMean(base), "4PE/8PE")
	}
}

// --- pipeline-stage microbenchmarks ---

// BenchmarkInterpreter measures raw functional interpretation speed.
func BenchmarkInterpreter(b *testing.B) {
	spec, err := workload.ByName("gzip", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.MustProgram()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		cpu := accdbt.NewCPU(mem.New())
		if err := cpu.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		if err := cpu.Run(0); err != nil {
			b.Fatal(err)
		}
		insts += cpu.InstCount
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minsts/s")
}

// BenchmarkDBTExecution measures the full VM (translate + execute).
func BenchmarkDBTExecution(b *testing.B) {
	spec, err := workload.ByName("gzip", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.MustProgram()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		cfg := vm.DefaultConfig()
		cfg.HotThreshold = benchThreshold
		v := vm.New(mem.New(), cfg)
		if err := v.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		if err := v.Run(0); err != nil {
			b.Fatal(err)
		}
		insts += v.Stats.TotalVInsts()
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "MVinsts/s")
}

// BenchmarkTranslator measures superblock translation throughput.
func BenchmarkTranslator(b *testing.B) {
	// Build a representative superblock once by running the collector.
	spec, err := workload.ByName("crafty", 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.HotThreshold = 10
	v := vm.New(mem.New(), cfg)
	if err := v.LoadProgram(spec.MustProgram()); err != nil {
		b.Fatal(err)
	}
	if err := v.Run(200_000); err != nil && !errors.Is(err, vm.ErrBudget) {
		b.Fatal(err)
	}
	// Re-translate the hottest fragment's source repeatedly via a direct
	// superblock (approximate: reuse the gzip Fig. 2 loop).
	sb := benchSuperblock(b)
	tcfg := translate.Config{Form: accdbt.Modified, NumAcc: 4, Chain: translate.SWPredRAS}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(sb, tcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilerOverhead measures the cost of the execution profiler
// on a full timed DBT run: the "off" case is the identical run with a
// nil profiler (the production fast path), the "on" case attaches a
// profiler to the VM and timing model. Events/s reports the trace-event
// rate the ring absorbs while profiling.
func BenchmarkProfilerOverhead(b *testing.B) {
	spec, err := workload.ByName("gzip", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.MustProgram()
	run := func(b *testing.B, profiled bool) {
		var events, retires uint64
		for i := 0; i < b.N; i++ {
			var p *prof.Profiler
			if profiled {
				p = prof.New(prof.Config{})
			}
			m := uarch.NewILDP(uarch.DefaultILDP())
			m.SetProfiler(p)
			cfg := vm.DefaultConfig()
			cfg.HotThreshold = benchThreshold
			cfg.Sink = m
			cfg.Prof = p
			v := vm.New(mem.New(), cfg)
			if err := v.LoadProgram(prog); err != nil {
				b.Fatal(err)
			}
			if err := v.Run(0); err != nil {
				b.Fatal(err)
			}
			m.Finish()
			if p != nil {
				p.Finish()
				events += p.EventsRecorded()
				retires += p.Retires()
			}
		}
		if profiled {
			b.ReportMetric(float64(events)/b.Elapsed().Seconds()/1e6, "Mevents/s")
			b.ReportMetric(float64(retires)/b.Elapsed().Seconds()/1e6, "Mrecs/s")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkTimingModelILDP measures ILDP timing-model throughput.
func BenchmarkTimingModelILDP(b *testing.B) {
	spec, err := workload.ByName("gzip", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.MustProgram()
	b.ResetTimer()
	var recs uint64
	for i := 0; i < b.N; i++ {
		m := uarch.NewILDP(uarch.DefaultILDP())
		cfg := vm.DefaultConfig()
		cfg.HotThreshold = benchThreshold
		cfg.Sink = m
		v := vm.New(mem.New(), cfg)
		if err := v.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		if err := v.Run(0); err != nil {
			b.Fatal(err)
		}
		recs += m.Finish().Insts
	}
	b.ReportMetric(float64(recs)/b.Elapsed().Seconds()/1e6, "Mrecs/s")
}

// benchSuperblock builds the Fig. 2 loop as a superblock for the
// translator microbenchmark.
func benchSuperblock(b *testing.B) *translate.Superblock {
	b.Helper()
	prog := accdbt.MustAssemble(`
	.text 0x12000
L1:
	ldbu   t2, 0(a0)
	subl   a1, #1, a1
	lda    a0, 1(a0)
	xor    t0, t2, t2
	srl    t0, #8, t0
	and    t2, #255, t2
	s8addq t2, v0, t2
	ldq    t2, 0(t2)
	xor    t2, t0, t0
	bne    a1, L1
`)
	seg := prog.Segments[0]
	sb := &translate.Superblock{StartPC: 0x12000, End: translate.EndBackward, NextPC: 0x12000 + 10*4}
	for off := 0; off+4 <= len(seg.Data); off += 4 {
		w := uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
			uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24
		inst := accdbt.DecodeAlpha(w)
		rec := translate.SBInst{PC: 0x12000 + uint64(off), Inst: inst}
		if inst.IsCondBranch() {
			rec.Taken = true
		}
		sb.Insts = append(sb.Insts, rec)
	}
	return sb
}

// BenchmarkAblationFusion regenerates the §4.5 unsplit-memory ablation.
func BenchmarkAblationFusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fusion(benchScale, benchThreshold)
		var se, fe []float64
		for _, r := range rows {
			se = append(se, r.SplitExpand)
			fe = append(fe, r.FusedExpand)
		}
		b.ReportMetric(stats.Mean(fe)/stats.Mean(se), "fused/split-expansion")
	}
}

// BenchmarkAblationThreshold regenerates the hot-threshold sweep.
func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Threshold(benchScale, []int{10, 50, 200})
		b.ReportMetric(rows[1].TransFraction, "translated-frac@50")
	}
}

// BenchmarkVMCost regenerates the §4.1/4.2 VM-overhead analysis.
func BenchmarkVMCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.VMCost(benchScale, 50)
		var per []float64
		for _, r := range rows {
			per = append(per, r.InterpPerSrc)
		}
		b.ReportMetric(stats.Mean(per), "interp-insts/src-inst")
	}
}

// BenchmarkAblationRAS regenerates the dual-address RAS sizing sweep.
func BenchmarkAblationRAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RASSweep(benchScale, benchThreshold, []int{4, 16})
		b.ReportMetric(rows[1].HitRate, "ras16-hit-rate")
	}
}

// BenchmarkVariance regenerates the dataset-sensitivity study.
func BenchmarkVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Variance(benchScale, benchThreshold, []uint64{0, 1})
		b.ReportMetric(experiments.Spread(rows,
			func(r experiments.VarianceRow) float64 { return r.DynM }), "dynM-spread")
	}
}

// BenchmarkStoreColdVsWarm measures what the shared fragment store
// saves: "cold" gives every iteration a fresh store (every superblock
// translated from scratch), "warm" reuses one store pre-populated
// through the save/load codec (every translation is a shared hit).
// translate-work/run is the per-run translation cost in work units;
// shared-hit-rate is the fraction of fragment installs served by the
// store.
func BenchmarkStoreColdVsWarm(b *testing.B) {
	spec, err := workload.ByName("gzip", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.MustProgram()
	run := func(b *testing.B, store func() *fragstore.Store) {
		var cost, hits, lookups uint64
		for i := 0; i < b.N; i++ {
			cfg := vm.DefaultConfig()
			cfg.HotThreshold = benchThreshold
			cfg.Store = store()
			v := vm.New(mem.New(), cfg)
			if err := v.LoadProgram(prog); err != nil {
				b.Fatal(err)
			}
			if err := v.Run(0); err != nil {
				b.Fatal(err)
			}
			cost += uint64(v.Stats.TranslateCost)
			hits += v.Stats.StoreSharedHits
			lookups += v.Stats.StoreHits + v.Stats.StoreMisses
		}
		b.ReportMetric(float64(cost)/float64(b.N), "translate-work/run")
		b.ReportMetric(float64(hits)/float64(max(lookups, 1)), "shared-hit-rate")
	}
	b.Run("cold", func(b *testing.B) {
		run(b, fragstore.New)
	})
	b.Run("warm", func(b *testing.B) {
		// Populate once, then persist through the codec so the warm path
		// is exactly what -cachefile exercises: decode, re-verify, share.
		seed := fragstore.New()
		cfg := vm.DefaultConfig()
		cfg.HotThreshold = benchThreshold
		cfg.Store = seed
		v := vm.New(mem.New(), cfg)
		if err := v.LoadProgram(prog); err != nil {
			b.Fatal(err)
		}
		if err := v.Run(0); err != nil {
			b.Fatal(err)
		}
		warm, rep, err := fragstore.Decode(seed.Encode(), fragstore.LoadOptions{})
		if err != nil || rep.Dropped() != 0 {
			b.Fatalf("reloading store: %v (%v)", err, rep)
		}
		b.ResetTimer()
		run(b, func() *fragstore.Store { return warm })
	})
}

package accdbt_test

import (
	"strings"
	"testing"

	"github.com/ildp/accdbt"
)

// TestPublicAPIQuickstart exercises the façade end to end, mirroring the
// README quick start.
func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := accdbt.Assemble(`
	.text 0x10000
start:
	ldiq  a0, 500
	clr   v0
loop:
	addq  v0, a0, v0
	subq  a0, #1, a0
	bne   a0, loop
	call_pal halt
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := accdbt.DefaultVMConfig()
	cfg.HotThreshold = 10
	v := accdbt.NewVM(accdbt.NewMemory(), cfg)
	if err := v.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(0); err != nil {
		t.Fatal(err)
	}
	if v.CPU().Reg[0] != 500*501/2 {
		t.Errorf("v0 = %d", v.CPU().Reg[0])
	}
	if v.Stats.Fragments == 0 {
		t.Error("no translation")
	}
}

func TestPublicAPIDecodeDisassemble(t *testing.T) {
	prog := accdbt.MustAssemble("\t.text 0\n\taddq t0, #5, t1\n")
	seg := prog.Segments[0]
	w := uint32(seg.Data[0]) | uint32(seg.Data[1])<<8 | uint32(seg.Data[2])<<16 | uint32(seg.Data[3])<<24
	inst := accdbt.DecodeAlpha(w)
	if inst.Op.String() != "addq" {
		t.Errorf("decoded %v", inst.Op)
	}
	if s := accdbt.DisassembleAlpha(w, 0); !strings.Contains(s, "addq") {
		t.Errorf("disassembly %q", s)
	}
}

func TestPublicAPITranslateDirect(t *testing.T) {
	// Drive the translator through the façade without the VM.
	prog := accdbt.MustAssemble(`
	.text 0x9000
	addq a0, a1, v0
	subq v0, #1, v0
	ret
`)
	seg := prog.Segments[0]
	sb := &accdbt.Superblock{StartPC: 0x9000}
	for off := 0; off+4 <= len(seg.Data); off += 4 {
		w := uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
			uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24
		sb.Insts = append(sb.Insts, accdbt.SBInst{
			PC: 0x9000 + uint64(off), Inst: accdbt.DecodeAlpha(w),
		})
	}
	res, err := accdbt.Translate(sb, accdbt.TranslateConfig{
		Form: accdbt.Modified, NumAcc: 4, Chain: accdbt.SWPredRAS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Insts) == 0 || res.SrcCount != 3 {
		t.Errorf("translation: %d insts, %d src", len(res.Insts), res.SrcCount)
	}
	str, err := accdbt.Straighten(sb, accdbt.SWPredRAS)
	if err != nil {
		t.Fatal(err)
	}
	if !str.Straightened {
		t.Error("straightened flag missing")
	}
}

func TestPublicAPIWorkloadsAndExperiments(t *testing.T) {
	if len(accdbt.WorkloadNames()) != 12 {
		t.Fatal("workload count")
	}
	w, err := accdbt.WorkloadByName("mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := accdbt.RunExperiment(accdbt.RunSpec{
		Workload: w, Machine: accdbt.MachineILDPModified,
		Chain: accdbt.SWPredRAS, Timing: true, HotThreshold: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Timing.IPC() <= 0 {
		t.Error("no timing result")
	}
	if _, err := accdbt.WorkloadByName("nope", 1); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestPublicAPITimingModels(t *testing.T) {
	ooo := accdbt.NewOoO(accdbt.DefaultOoOConfig())
	core := accdbt.NewILDPCore(accdbt.DefaultILDPConfig())
	rec := accdbt.TraceRec{
		PC: 0x1000, Size: 4,
		SrcReg: [2]uint8{0xFF, 0xFF}, DstReg: 1, SrcAcc: 0xFF, DstAcc: 0xFF,
		DstOperational: true, VCredit: 1,
	}
	for i := 0; i < 100; i++ {
		r := rec
		r.PC += uint64(i) * 4
		ooo.Append(r)
		core.Append(r)
	}
	if ooo.Finish().Insts != 100 || core.Finish().Insts != 100 {
		t.Error("timing models lost records")
	}
}

// Command ildpbench regenerates the tables and figures of Kim & Smith,
// "Dynamic Binary Translation for Accumulator-Oriented Architectures"
// (CGO 2003), over the synthetic SPEC CPU2000 INT stand-in workloads.
//
// Usage:
//
//	ildpbench -experiment=all -scale=1
//	ildpbench -experiment=fig8 -scale=2 -threshold=50
//	ildpbench -experiment=all -scale=2 -json > reports/experiments-scale2.json
//
// With -json the run emits the versioned machine-readable report
// (internal/report schema) that `ildpreport` consumes instead of text
// tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/report"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: table1, table2, overhead, fig4..fig9, fusion, threshold, superblock, vmcost, ras, variance, all")
	scale := flag.Int("scale", 1, "workload scale factor (loop trip multiplier)")
	threshold := flag.Int("threshold", 50, "hot-trace threshold (the paper uses 50)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of text tables")
	flag.Parse()

	if *jsonOut {
		ids := report.ExperimentIDs()
		if *experiment != "all" {
			ids = []string{*experiment}
		}
		r, err := report.Run(report.RunOptions{
			Scale: *scale, Threshold: *threshold, Experiments: ids,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ildpbench:", err)
			os.Exit(1)
		}
		if err := r.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ildpbench:", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string) bool {
		return *experiment == "all" || *experiment == name
	}
	ran := false

	if run("table1") {
		fmt.Println(table1())
		ran = true
	}
	if run("table2") {
		fmt.Println(experiments.FormatTable2(experiments.Table2(*scale, *threshold)))
		ran = true
	}
	if run("overhead") {
		fmt.Println(experiments.FormatOverhead(experiments.Overhead(*scale, *threshold)))
		ran = true
	}
	if run("fig4") {
		fmt.Println(experiments.FormatFig4(experiments.Fig4(*scale, *threshold)))
		ran = true
	}
	if run("fig5") {
		fmt.Println(experiments.FormatFig5(experiments.Fig5(*scale, *threshold)))
		ran = true
	}
	if run("fig6") {
		fmt.Println(experiments.FormatFig6(experiments.Fig6(*scale, *threshold)))
		ran = true
	}
	if run("fig7") {
		fmt.Println(experiments.FormatFig7(experiments.Fig7(*scale, *threshold)))
		ran = true
	}
	if run("fig8") {
		fmt.Println(experiments.FormatFig8(experiments.Fig8(*scale, *threshold)))
		ran = true
	}
	if run("fig9") {
		fmt.Println(experiments.FormatFig9(experiments.Fig9(*scale, *threshold)))
		ran = true
	}
	if run("fusion") {
		fmt.Println(experiments.FormatFusion(experiments.Fusion(*scale, *threshold)))
		ran = true
	}
	if run("threshold") {
		fmt.Println(experiments.FormatThreshold(experiments.Threshold(*scale, report.DefaultThresholdSweep)))
		ran = true
	}
	if run("superblock") {
		fmt.Println(experiments.FormatSuperblock(experiments.Superblock(*scale, *threshold, report.DefaultSuperblockSweep)))
		ran = true
	}
	if run("vmcost") {
		fmt.Println(experiments.FormatVMCost(experiments.VMCost(*scale, *threshold)))
		ran = true
	}
	if run("ras") {
		fmt.Println(experiments.FormatRASSweep(experiments.RASSweep(*scale, *threshold, report.DefaultRASSweep)))
		ran = true
	}
	if run("variance") {
		fmt.Println(experiments.FormatVariance(experiments.Variance(*scale, *threshold, report.DefaultVarianceSeeds)))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

func table1() string {
	rows := []string{
		"Table 1. Microarchitecture parameters",
		strings.Repeat("-", 72),
		"Branch prediction   16K-entry 12-bit-history g-share, 8-entry RAS,",
		"                    512-entry 4-way BTB, 3-cycle redirect latency",
		"I-cache             128B lines, direct-mapped, 32KB; <=3 basic blocks/cycle",
		"D-cache             64B lines, 4-way, 32KB, 2-cycle, random replacement",
		"                    (ILDP variant: 64B, 2-way, 8KB, replicated per PE)",
		"L2 cache            128B lines, 4-way, 1MB, 8-cycle, random replacement",
		"Memory              72-cycle latency, 4-cycle burst",
		"Reorder buffer      128 instructions; retire 4/cycle",
		"Issue (superscalar) 128-entry window, 4 symmetric FUs, oldest-first",
		"Issue (ILDP)        4/6/8 in-order PE FIFOs, 1 issue per PE per cycle",
		"Communication       0 or 2 cycle global wire latency between PEs",
	}
	return strings.Join(rows, "\n") + "\n"
}

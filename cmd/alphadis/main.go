// Command alphadis disassembles a program image produced by alphaasm.
//
// Usage:
//
//	alphadis prog.img
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alphaprog"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: alphadis prog.img")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	prog, err := alphaprog.Load(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("entry: %#x\n", prog.Entry)
	for _, seg := range prog.Segments {
		fmt.Printf("segment %#x (%d bytes)\n", seg.Addr, len(seg.Data))
		for off := 0; off+4 <= len(seg.Data); off += 4 {
			w := alpha.Word(uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
				uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24)
			pc := seg.Addr + uint64(off)
			fmt.Printf("  %#010x:  %08x  %s\n", pc, uint32(w), alpha.DisassembleWord(w, pc))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alphadis:", err)
	os.Exit(1)
}

// Command ildpanalyze runs the repository's project-specific static
// analyses (internal/lint) over Go source trees: sentinel errors must
// flow through errors.Is / errors.As, and nil-safe metrics/profiling
// hooks must not hide behind redundant nil guards.
//
// Usage:
//
//	ildpanalyze ./internal/... ./cmd/...
//	ildpanalyze -tests ./internal/vm
//	ildpanalyze -select exporteddoc ./internal/tcache ./internal/fragstore
//
// A `...` suffix walks the directory recursively. -select runs a
// comma-separated list of analyzers instead of the default suite —
// the opt-in exporteddoc analyzer (every exported symbol carries a doc
// comment) is only reachable this way. The exit status is 0 when the
// tree is clean, 1 when any diagnostic fires, 2 on usage or parse
// errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/ildp/accdbt/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	sel := flag.String("select", "", "comma-separated analyzer names (default: the default suite)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ildpanalyze [-tests] [-select names] ./dir/... [dir2 ...]")
		os.Exit(2)
	}
	var names []string
	if *sel != "" {
		names = strings.Split(*sel, ",")
	}
	analyzers, err := lint.Select(names)
	if err != nil {
		fatal(err)
	}

	var dirs []string
	for _, arg := range flag.Args() {
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			err := filepath.WalkDir(rest, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() && !strings.HasPrefix(d.Name(), ".") {
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				fatal(err)
			}
		} else {
			dirs = append(dirs, arg)
		}
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	findings := 0
	for _, dir := range dirs {
		files, err := parseDir(fset, dir, *tests)
		if err != nil {
			fatal(err)
		}
		if len(files) == 0 {
			continue
		}
		for _, a := range analyzers {
			pass := &lint.Pass{
				Analyzer: a, Fset: fset, Files: files,
				Report: func(d lint.Diagnostic) {
					findings++
					fmt.Printf("%s: %s [%s]\n", fset.Position(d.Pos), d.Message, a.Name)
				},
			}
			if err := a.Run(pass); err != nil {
				fatal(fmt.Errorf("%s: %s: %w", dir, a.Name, err))
			}
		}
	}
	if findings > 0 {
		fmt.Printf("ildpanalyze: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// parseDir parses the directory's Go files (one flat directory, no
// recursion — the caller expands `...`).
func parseDir(fset *token.FileSet, dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ildpanalyze:", err)
	os.Exit(2)
}

// Command ildpmon is a soak monitor: it drives a continuous sweep of
// differential chaos runs (or kill-and-resume runs with -mode kill)
// while serving the live telemetry plane over HTTP, so the self-healing
// machinery can be watched in real time — Prometheus exposition on
// /metrics, an SSE event stream on /events, and per-session
// introspection on /vms (see DESIGN.md §13).
//
// Each iteration registers a fresh telemetry session, attaches it to
// the run through the experiments Tune/Attach hooks (a Poll hook on the
// VM plus a probe — the zero-perturbation protocol), and finishes it
// when the run completes. The last -keep finished sessions stay
// browsable; older ones are deregistered.
//
// Usage:
//
//	ildpmon -addr 127.0.0.1:9844
//	ildpmon -mode kill -machines ildp-modified -iterations 100
//	curl -s http://127.0.0.1:9844/metrics | grep vm_recovery
//	curl -N http://127.0.0.1:9844/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/telemetry"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

var allMachines = []experiments.Machine{
	experiments.Original,
	experiments.Straightened,
	experiments.ILDPBasic,
	experiments.ILDPModified,
}

func parseMachines(s string) ([]experiments.Machine, error) {
	if s == "all" {
		return allMachines, nil
	}
	var out []experiments.Machine
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range allMachines {
			if m.String() == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown machine %q (want original, straightened, ildp-basic, ildp-modified, or all)", name)
		}
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9844", "serve the telemetry plane on this address")
	mode := flag.String("mode", "chaos", "sweep mode: chaos | kill")
	wlName := flag.String("workload", "gzip", "workload name (see ildpvm -list)")
	scale := flag.Int("scale", 1, "workload scale factor")
	machinesFlag := flag.String("machines", "all", "comma-separated machines, or \"all\"")
	seedBase := flag.Uint64("seed-base", 1000, "first seed of the sweep")
	iterations := flag.Int("iterations", 0, "number of runs (0 = until interrupted)")
	interval := flag.Duration("interval", 0, "pause between runs")
	keep := flag.Int("keep", 8, "finished sessions to keep registered")
	kills := flag.Int("kills", 3, "maximum preemptions per run (with -mode kill)")
	maxV := flag.Int64("max", 50_000_000, "V-instruction budget per run (0 = unlimited)")
	linger := flag.Bool("linger", true, "keep serving the plane after a finite sweep until interrupted")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log format: text | json")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ildpmon:", err)
		os.Exit(2)
	}
	machines, err := parseMachines(*machinesFlag)
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	wl, err := workload.ByName(*wlName, *scale)
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	if *mode != "chaos" && *mode != "kill" {
		logger.Error("unknown -mode (want chaos or kill)", "mode", *mode)
		os.Exit(1)
	}

	plane := telemetry.New(telemetry.Options{Logger: logger})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	fmt.Printf("telemetry:          serving on http://%s\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, plane.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
			logger.Error("telemetry server failed", "err", err)
		}
	}()
	plane.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var finished []*telemetry.Session
	var runs, failures int
	for i := 0; ctx.Err() == nil && (*iterations == 0 || i < *iterations); i++ {
		seed := *seedBase + uint64(i)
		m := machines[i%len(machines)]
		reg := metrics.NewRegistry()
		sess := plane.Register(telemetry.SessionConfig{
			Name:     fmt.Sprintf("%s-%d", *mode, seed),
			Workload: wl.Name, Machine: m.String(), Registry: reg,
		})
		tune := func(cfg *vm.Config) { cfg.Poll = sess.Poll }
		attach := func(v *vm.VM) { sess.Attach(v, nil) }

		runs++
		start := time.Now()
		var mismatch string
		var runErr error
		switch *mode {
		case "chaos":
			out, err := experiments.RunChaos(experiments.ChaosSpec{
				Workload: wl, Machine: m, Seed: seed, MaxV: *maxV,
				Metrics: reg, Tune: tune, Attach: attach,
			})
			runErr = err
			if err == nil {
				mismatch = out.Mismatch
				logger.Info("chaos run done", "seed", seed, "machine", m.String(),
					"faults", out.Faults.Total(), "recoveries", out.VM.Recoveries(),
					"quarantines", out.VM.Quarantines, "elapsed", time.Since(start))
			}
		case "kill":
			out, err := experiments.RunKillResume(experiments.KillResumeSpec{
				Workload: wl, Machine: m, Seed: seed, Kills: *kills, MaxV: *maxV,
				Metrics: reg, Tune: tune, Attach: attach,
			})
			runErr = err
			if err == nil {
				mismatch = out.Mismatch
				logger.Info("kill-resume run done", "seed", seed, "machine", m.String(),
					"kills", out.Kills, "segments", out.Segments,
					"ckpt_bytes", out.CkptBytes, "elapsed", time.Since(start))
			}
		}
		sess.Finish()
		switch {
		case runErr != nil:
			failures++
			logger.Error("run failed", "seed", seed, "machine", m.String(), "err", runErr)
		case mismatch != "":
			failures++
			logger.Error("state diverged", "seed", seed, "machine", m.String(), "mismatch", mismatch)
		}

		finished = append(finished, sess)
		for len(finished) > *keep {
			plane.Deregister(finished[0])
			finished = finished[1:]
		}
		if *interval > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(*interval):
			}
		}
	}

	logger.Info("sweep finished", "mode", *mode, "runs", runs, "failures", failures)
	if *linger && ctx.Err() == nil {
		logger.Info("telemetry plane still serving; interrupt to exit", "addr", ln.Addr().String())
		<-ctx.Done()
	}
	ln.Close()
	plane.Close()
	if failures > 0 {
		os.Exit(1)
	}
}

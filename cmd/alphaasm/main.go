// Command alphaasm assembles Alpha source text into a program image.
//
// Usage:
//
//	alphaasm -o prog.img prog.s
//	alphaasm -list prog.s        # print a disassembly listing
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
)

func main() {
	out := flag.String("o", "", "output image file (default: <input>.img)")
	list := flag.Bool("list", false, "print a disassembly listing instead of writing an image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: alphaasm [-o out.img] [-list] input.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := alphaasm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *list {
		fmt.Printf("entry: %#x\n", prog.Entry)
		for _, seg := range prog.Segments {
			fmt.Printf("segment %#x (%d bytes)\n", seg.Addr, len(seg.Data))
			for off := 0; off+4 <= len(seg.Data); off += 4 {
				w := alpha.Word(uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
					uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24)
				pc := seg.Addr + uint64(off)
				fmt.Printf("  %#010x:  %08x  %s\n", pc, uint32(w), alpha.DisassembleWord(w, pc))
			}
		}
		return
	}
	name := *out
	if name == "" {
		name = flag.Arg(0) + ".img"
	}
	f, err := os.Create(name)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := prog.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: entry %#x, %d bytes in %d segments\n",
		name, prog.Entry, prog.TotalBytes(), len(prog.Segments))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alphaasm:", err)
	os.Exit(1)
}

// Command ildpserve runs the multi-tenant VM service: an HTTP server
// that accepts Alpha program images, schedules each admitted session as
// a preemptible VM over a bounded worker pool (one V-instruction
// quantum at a time, checkpointing on deschedule), and serves the live
// telemetry plane alongside the session API.
//
// Endpoints:
//
//	POST   /sessions                submit an alphaprog image (body) or ?workload=NAME[&scale=N][&seed=N]
//	GET    /sessions                list sessions
//	GET    /sessions/{id}[?wait=ms] session state, optionally long-polling for completion
//	GET    /sessions/{id}/checkpoint  final architected state (encoded checkpoint)
//	DELETE /sessions/{id}           kill a session
//	GET    /stats                   scheduler snapshot (queue depth, latency quantiles)
//	GET    /metrics /events /vms /healthz /readyz   telemetry plane (DESIGN.md §13)
//
// Admission is bounded: beyond -max-sessions (or a tenant's
// -tenant-quota or -tenant-pages) submissions receive typed 429s;
// during drain they receive 503s. On SIGINT/SIGTERM the server drains
// gracefully — it stops admitting, preempts every running quantum at a
// V-instruction boundary, checkpoints all unfinished sessions into
// -spill, and exits 0; a successor started with -resume-dir re-admits
// them and continues bit-identically (DESIGN.md §14).
//
// Hostile-world hardening (DESIGN.md §15): -max-pages governs each
// guest's resident page count (a memory bomb dies with a typed
// resource failure at its precise V-PC), -bundle-dir records every
// session failure as a replayable flight-recorder bundle, and
// -io-chaos injects deterministic disk faults on the spill path for
// chaos drills — all spill, checkpoint, and bundle writes are atomic
// (write-temp-rename), so a torn file is never parsed as state.
//
// Usage:
//
//	ildpserve -addr 127.0.0.1:9855 -spill /var/tmp/ildp-spill
//	ildpserve -addr 127.0.0.1:9855 -spill d -resume-dir d   # successor
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/ildp/accdbt/internal/iofs"
	"github.com/ildp/accdbt/internal/serve"
	"github.com/ildp/accdbt/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9855", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	quantum := flag.Int64("quantum", serve.DefaultQuantumVInsts, "scheduler quantum in V-instructions")
	maxSessions := flag.Int("max-sessions", serve.DefaultMaxSessions, "bound on live sessions (admission beyond it is a 429)")
	tenantQuota := flag.Int("tenant-quota", 0, "bound on live sessions per tenant (0 = unlimited)")
	budget := flag.Int64("budget", 0, "per-session cumulative V-instruction budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "per-session wall-clock lifetime (0 = unlimited)")
	quantumWall := flag.Duration("quantum-wall", time.Second, "per-quantum wall-clock safety net (0 = off)")
	maxResident := flag.Int("max-resident", 0, "bound on in-memory checkpoints before cold sessions spill (0 = unlimited)")
	spillDir := flag.String("spill", "", "spill directory for overload shedding and graceful drain")
	resumeDir := flag.String("resume-dir", "", "re-admit sessions a previous server drained into this directory")
	maxPages := flag.Int("max-pages", 0, "per-session guest page limit; exceeding it is a typed resource kill (0 = ungoverned)")
	tenantPages := flag.Int("tenant-pages", 0, "bound on resident guest pages per tenant: admission beyond it is a 429, growth past it a typed kill (0 = unlimited)")
	bundleDir := flag.String("bundle-dir", "", "write a flight-recorder repro bundle here for every session failure (replay with ildpchaos -replay)")
	chaosSeed := flag.Uint64("io-chaos", 0, "inject deterministic I/O faults on the spill path with this seed (0 = off; testing only)")
	chaosRate := flag.Int("io-chaos-rate", 8, "with -io-chaos, mean operations between injected faults")
	chaosKinds := flag.String("io-chaos-kinds", "", "with -io-chaos, comma-separated fault kinds (enospc,eio,torn_write,partial_read,rename_fail; empty = all)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log format: text | json")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ildpserve:", err)
		os.Exit(2)
	}

	var fsys iofs.FS
	if *chaosSeed != 0 {
		kinds, err := iofs.KindsByNames(*chaosKinds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ildpserve:", err)
			os.Exit(2)
		}
		fsys = iofs.NewFaulty(iofs.OS{}, iofs.Config{
			Seed: *chaosSeed, Rate: *chaosRate, Kinds: kinds,
		})
		fmt.Printf("io-chaos:           seed %d, rate 1/%d\n", *chaosSeed, *chaosRate)
	}

	s := serve.New(serve.Options{
		Workers:         *workers,
		QuantumVInsts:   *quantum,
		MaxSessions:     *maxSessions,
		TenantQuota:     *tenantQuota,
		SessionVBudget:  *budget,
		SessionWall:     *timeout,
		QuantumWall:     *quantumWall,
		MaxResident:     *maxResident,
		SpillDir:        *spillDir,
		SessionMaxPages: *maxPages,
		TenantPageQuota: *tenantPages,
		BundleDir:       *bundleDir,
		FS:              fsys,
		Logger:          logger,
	})

	if *resumeDir != "" {
		resumed, corrupt, err := s.Resume(*resumeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ildpserve: resume:", err)
			os.Exit(1)
		}
		fmt.Printf("resumed:            %d sessions (%d corrupt)\n", resumed, corrupt)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ildpserve:", err)
		os.Exit(1)
	}
	fmt.Printf("serving:            http://%s\n", ln.Addr())
	fmt.Printf("workers:            %d\n", workersOf(*workers))
	fmt.Printf("quantum:            %d V-insts\n", *quantum)

	httpSrv := &http.Server{Handler: s.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ildpserve:", err)
			os.Exit(1)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining:           stop admitting, checkpointing in-flight sessions")
	spilled, err := s.Drain()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ildpserve: drain:", err)
		httpSrv.Close()
		os.Exit(1)
	}
	fmt.Printf("drained:            %d sessions spilled\n", spilled)
	httpSrv.Close()
	s.Close()
}

// workersOf mirrors the server's GOMAXPROCS defaulting for the banner.
func workersOf(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Command ildplint statically verifies translated I-ISA fragments against
// the paper's accumulator invariants. It runs a program (a named workload,
// an assembly source file, or an alphaasm image) through the co-designed
// VM to populate the translation cache, then checks every installed
// fragment with the iverify rules — encoding legality, accumulator
// dataflow, precise-state completeness, and chaining well-formedness —
// with fragment links resolved against the cache.
//
// With -sem, every fragment is additionally proved semantically: its
// source superblock is reconstructed from guest memory and the symbolic
// equivalence prover (DESIGN.md §12) shows the fragment computes the
// superblock's semantics at every exit — final registers, memory
// effects, and next V-PC — printing typed counterexamples otherwise.
//
// The exit status is 0 when every fragment verifies, 1 when any fragment
// has violations, and 2 on usage errors.
//
// Usage:
//
//	ildplint -workload gzip -form basic -chain sw_pred.ras
//	ildplint -workload gzip -sem                      (prove semantics too)
//	ildplint -src prog.s -acc 8 -v
//	ildplint -workload mcf -corrupt drop-state-copy   (demonstrates a failure)
//	ildplint -rules                                   (print the rule table)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/ildp/accdbt/internal/alpha"
	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iverify"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/semcheck"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "verify a named synthetic workload (see -list)")
	list := flag.Bool("list", false, "list available workloads")
	rules := flag.Bool("rules", false, "print the verifier rule table and exit")
	srcFile := flag.String("src", "", "verify an Alpha assembly source file")
	imgFile := flag.String("img", "", "verify an alphaasm program image")
	scale := flag.Int("scale", 1, "workload scale factor")
	form := flag.String("form", "modified", "I-ISA form: basic | modified")
	chain := flag.String("chain", "sw_pred.ras", "chaining: no_pred | sw_pred.no_ras | sw_pred.ras")
	threshold := flag.Int("threshold", 10, "hot-trace threshold")
	numAcc := flag.Int("acc", 4, "logical accumulators")
	maxV := flag.Int64("max", 5_000_000, "V-instruction budget (0 = unlimited)")
	corrupt := flag.String("corrupt", "", "apply a named mutation before checking (see -rules)")
	sem := flag.Bool("sem", false, "also prove each fragment semantically equivalent to its reconstructed source")
	verbose := flag.Bool("v", false, "print a line per fragment, not just failures")
	flag.Parse()

	if *rules {
		fmt.Println("rule  name            paper   mutation")
		for _, r := range iverify.Rules() {
			name := ""
			for _, m := range iverify.Mutations() {
				if m.Rule == r {
					name = m.Name
				}
			}
			fmt.Printf("%-5s %-15s %-7s %s\n", r.ID(), r, r.PaperRef(), name)
		}
		return
	}
	if *list {
		for _, name := range workload.Names() {
			s, _ := workload.ByName(name, 1)
			fmt.Printf("  %-8s %s\n", name, s.Description)
		}
		return
	}

	cfg := vm.DefaultConfig()
	cfg.HotThreshold = *threshold
	cfg.NumAcc = *numAcc
	switch *chain {
	case "no_pred":
		cfg.Chain = translate.NoPred
	case "sw_pred.no_ras":
		cfg.Chain = translate.SWPred
	case "sw_pred.ras":
		cfg.Chain = translate.SWPredRAS
	default:
		fatal(fmt.Errorf("unknown chaining mode %q", *chain))
	}
	switch *form {
	case "basic":
		cfg.Form = ildp.Basic
	case "modified":
		cfg.Form = ildp.Modified
	default:
		fatal(fmt.Errorf("unknown form %q (straightened code carries no I-ISA invariants)", *form))
	}

	prog, name := loadProgram(*wl, *srcFile, *imgFile, *scale)
	v := vm.New(mem.New(), cfg)
	if err := v.LoadProgram(prog); err != nil {
		fatal(err)
	}
	if err := v.Run(*maxV); err != nil && !errors.Is(err, vm.ErrBudget) {
		fatal(err)
	}

	tc := v.TCache()
	if tc.Len() == 0 {
		fatal(fmt.Errorf("%s translated no fragments; lower -threshold or raise -max", name))
	}
	vcfg := iverify.Config{
		Form: cfg.Form, NumAcc: cfg.NumAcc, Chain: cfg.Chain,
		ResolveFrag: func(id int32) (uint64, bool) {
			f := tc.Frag(id)
			if f == nil {
				return 0, false
			}
			return f.VStart, true
		},
	}

	var mutation *iverify.Mutation
	if *corrupt != "" {
		for i := range iverify.Mutations() {
			if m := iverify.Mutations()[i]; m.Name == *corrupt {
				mutation = &m
				break
			}
		}
		if mutation == nil {
			fatal(fmt.Errorf("unknown mutation %q (see -rules)", *corrupt))
		}
	}

	// The prover reconstructs each fragment's source superblock by
	// decoding guest memory, so it reads through the CPU the fragments
	// were translated from.
	cpu := v.CPU()
	readWord := func(addr uint64) (alpha.Word, error) {
		w, err := cpu.Mem.Read32(addr)
		return alpha.Word(w), err
	}

	checked, violations, dirty, corrupted, proved, disproved := 0, 0, 0, 0, 0, 0
	for id := int32(0); int(id) < tc.Len(); id++ {
		code := iverify.FromFragment(tc.Frag(id))
		ccfg := vcfg
		if mutation != nil {
			// Mutated fragments fabricate links with no installed target;
			// lint them unresolved, as the mutation engine does.
			ccfg.ResolveFrag = nil
			if mutation.Apply(code, ccfg) {
				corrupted++
			}
		}
		rep := iverify.Check(code, ccfg)
		if rep.Skipped {
			continue
		}
		checked++
		if !rep.OK() {
			dirty++
			violations += len(rep.Violations)
			fmt.Printf("%s: fragment %d: %s\n", name, id, rep)
		} else if *verbose {
			fmt.Printf("%s: fragment %d: %s\n", name, id, rep)
		}

		if *sem {
			scode := &semcheck.Code{VStart: code.VStart, Insts: code.Insts,
				PEI: code.PEI, PEIRecover: code.PEIRecover,
				Straightened: code.Straightened}
			sb, err := semcheck.Reconstruct(readWord, scode)
			if err != nil {
				disproved++
				fmt.Printf("%s: fragment %d: %v\n", name, id, err)
				continue
			}
			srep := semcheck.Prove(sb, scode)
			if !srep.OK() {
				disproved++
				fmt.Printf("%s: fragment %d: proof failed:\n%s\n", name, id, srep)
			} else {
				proved++
				if *verbose {
					fmt.Printf("%s: fragment %d: proved (%d exits, %d finals)\n",
						name, id, srep.Exits, srep.Finals)
				}
			}
		}
	}

	if mutation != nil && corrupted == 0 {
		fatal(fmt.Errorf("mutation %q found no applicable site in %d fragments",
			*corrupt, tc.Len()))
	}
	fmt.Printf("%s: %d fragments checked, %d with violations (%d total violations)\n",
		name, checked, dirty, violations)
	if *sem {
		fmt.Printf("%s: %d fragments proved, %d with counterexamples\n",
			name, proved, disproved)
	}
	if dirty > 0 || disproved > 0 {
		os.Exit(1)
	}
}

func loadProgram(wl, src, img string, scale int) (*alphaprog.Program, string) {
	switch {
	case wl != "":
		spec, err := workload.ByName(wl, scale)
		if err != nil {
			fatal(err)
		}
		p, err := spec.Program()
		if err != nil {
			fatal(err)
		}
		return p, wl
	case src != "":
		text, err := os.ReadFile(src)
		if err != nil {
			fatal(err)
		}
		p, err := alphaasm.Assemble(string(text))
		if err != nil {
			fatal(err)
		}
		return p, src
	case img != "":
		f, err := os.Open(img)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		p, err := alphaprog.Load(f)
		if err != nil {
			fatal(err)
		}
		return p, img
	}
	fmt.Fprintln(os.Stderr, "ildplint: one of -workload, -src, or -img is required (see -list)")
	os.Exit(2)
	return nil, ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ildplint:", err)
	os.Exit(1)
}

// Command ildpchaos runs the differential chaos oracle from the shell:
// each (seed, machine) pair executes a workload once on the pure Alpha
// interpreter and once on the self-healing DBT VM with deterministic
// fault injection, then compares the final architected state
// bit-for-bit. Any divergence or unrecovered fault fails the sweep.
//
// With -kill the sweep runs the kill-and-resume harness instead: each
// run is preempted at seed-chosen points, checkpointed through the full
// encode/decode path, and resumed in a fresh VM (cold translation
// cache); the final state must still be bit-identical to the
// uninterrupted oracle.
//
// With -replay BUNDLE the tool re-executes a flight-recorder repro
// bundle (recorded by `ildpvm -bundle` or `ildpserve -bundle-dir`) and
// demands the bit-identical failure — same kind, same V-PC, same
// counters. Exit 0 means the failure reproduced exactly; exit 1 names
// the first divergence.
//
// Usage:
//
//	ildpchaos -seeds 50 -workload gzip -machines all -kinds all
//	ildpchaos -seeds 1 -seed-base 424242 -machines ildp-modified -kinds bitflip -v
//	ildpchaos -kill -seeds 50 -kills 3
//	ildpchaos -replay crash.bundle
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/flight"
	"github.com/ildp/accdbt/internal/telemetry"
	"github.com/ildp/accdbt/internal/workload"
)

// logger is the process-wide structured logger for diagnostics; sweep
// results stay on stdout in their fixed format.
var logger *slog.Logger

var allMachines = []experiments.Machine{
	experiments.Original,
	experiments.Straightened,
	experiments.ILDPBasic,
	experiments.ILDPModified,
}

func parseMachines(s string) ([]experiments.Machine, error) {
	if s == "all" {
		return allMachines, nil
	}
	var out []experiments.Machine
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range allMachines {
			if m.String() == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown machine %q (want original, straightened, ildp-basic, ildp-modified, or all)", name)
		}
	}
	return out, nil
}

func parseKinds(s string) ([]faultinject.Kind, error) {
	if s == "all" {
		return nil, nil // nil means "all kinds" to the injector
	}
	var out []faultinject.Kind
	for _, name := range strings.Split(s, ",") {
		k, err := faultinject.KindByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func main() {
	seeds := flag.Int("seeds", 50, "number of consecutive seeds to sweep")
	seedBase := flag.Uint64("seed-base", 1000, "first seed of the sweep")
	wlName := flag.String("workload", "gzip", "workload name (see ildpbench -list)")
	scale := flag.Int("scale", 1, "workload scale factor")
	machinesFlag := flag.String("machines", "all", "comma-separated machines, or \"all\"")
	kindsFlag := flag.String("kinds", "all", "comma-separated fault kinds, or \"all\"")
	entryRate := flag.Int("entry-rate", 16, "fault one fragment entry in N decisions")
	transRate := flag.Int("trans-rate", 4, "fault one translation in N decisions")
	maxFaults := flag.Int("max-faults", 0, "stop injecting after N applied faults (0 = unlimited)")
	maxV := flag.Int64("max", 50_000_000, "V-instruction budget per run (0 = unlimited)")
	verbose := flag.Bool("v", false, "print one line per run instead of only failures")
	kill := flag.Bool("kill", false, "run the kill-and-resume harness instead of fault injection")
	kills := flag.Int("kills", 3, "maximum preemptions per run (with -kill; actual count is seed-chosen)")
	replay := flag.String("replay", "", "re-execute a flight-recorder bundle and demand the bit-identical failure")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log format: text | json")
	flag.Parse()

	var err error
	logger, err = telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ildpchaos:", err)
		os.Exit(2)
	}

	if *replay != "" {
		replayBundle(*replay)
		return
	}

	machines, err := parseMachines(*machinesFlag)
	if err != nil {
		fatal(err)
	}
	kinds, err := parseKinds(*kindsFlag)
	if err != nil {
		fatal(err)
	}
	wl, err := workload.ByName(*wlName, *scale)
	if err != nil {
		fatal(err)
	}

	if *kill {
		killResumeSweep(wl, machines, *seeds, *seedBase, *kills, *maxV, *verbose)
		return
	}

	var runs, failures int
	var faults faultinject.Counts
	var recoveries, quarantines uint64
	for s := 0; s < *seeds; s++ {
		seed := *seedBase + uint64(s)
		m := machines[s%len(machines)]
		out, err := experiments.RunChaos(experiments.ChaosSpec{
			Workload: wl, Machine: m, Seed: seed,
			Kinds:     kinds,
			EntryRate: *entryRate, TranslateRate: *transRate,
			MaxFaults: *maxFaults,
			MaxV:      *maxV,
		})
		runs++
		switch {
		case err != nil:
			failures++
			logger.Error("run failed", "seed", seed, "machine", m.String(), "err", err)
			continue
		case out.Mismatch != "":
			failures++
			logger.Error("state diverged", "seed", seed, "machine", m.String(),
				"mismatch", out.Mismatch, "faults", out.Faults.String())
			continue
		}
		for k, n := range out.Faults {
			faults[k] += n
		}
		recoveries += out.VM.Recoveries()
		quarantines += out.VM.Quarantines
		if *verbose {
			fmt.Printf("ok   seed %d on %-13v %3d faults, %3d recoveries, %d quarantined (%s)\n",
				seed, m, out.Faults.Total(), out.VM.Recoveries(), out.VM.Quarantines, out.Faults)
		}
	}

	fmt.Printf("chaos: %d/%d runs green on %s; %d faults applied, %d recoveries, %d quarantines (%s)\n",
		runs-failures, runs, wl.Name, faults.Total(), recoveries, quarantines, faults)
	if failures > 0 {
		os.Exit(1)
	}
}

// replayBundle re-executes a flight-recorder bundle and checks the
// outcome against the recorded failure. A reproduced failure exits 0;
// any divergence (or an unreadable bundle) exits 1 naming the cause.
func replayBundle(path string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	b, err := flight.Decode(raw)
	if err != nil {
		fatal(fmt.Errorf("decoding %s: %w", path, err))
	}
	fmt.Printf("bundle: %s failure at V-PC %#x: %s\n", b.Kind, b.VPC, b.Cause)
	for _, ev := range b.Events {
		fmt.Printf("  event: %s\n", ev)
	}
	res, err := flight.Replay(b)
	if err != nil {
		fatal(fmt.Errorf("replaying %s: %w", path, err))
	}
	if err := res.Matches(b); err != nil {
		logger.Error("replay diverged from the recorded failure", "err", err)
		os.Exit(1)
	}
	fmt.Printf("replay: reproduced the %s failure bit-identically at V-PC %#x (%d counters agree)\n",
		res.Kind, res.VPC, len(res.Counters))
}

// killResumeSweep drives RunKillResume over the seed range, cycling
// machines exactly like the fault sweep. Any comparison error, state
// divergence, or accounting mismatch fails the sweep.
func killResumeSweep(wl *workload.Spec, machines []experiments.Machine,
	seeds int, seedBase uint64, kills int, maxV int64, verbose bool) {
	var runs, failures, totalKills int
	lastCkpt := 0
	for s := 0; s < seeds; s++ {
		seed := seedBase + uint64(s)
		m := machines[s%len(machines)]
		out, err := experiments.RunKillResume(experiments.KillResumeSpec{
			Workload: wl, Machine: m, Seed: seed, Kills: kills, MaxV: maxV,
		})
		runs++
		switch {
		case err != nil:
			failures++
			logger.Error("run failed", "seed", seed, "machine", m.String(), "err", err)
			continue
		case out.Mismatch != "":
			failures++
			logger.Error("state diverged", "seed", seed, "machine", m.String(),
				"kills", out.Kills, "targets", fmt.Sprint(out.KillTargets), "mismatch", out.Mismatch)
			continue
		}
		totalKills += out.Kills
		if out.CkptBytes > 0 {
			lastCkpt = out.CkptBytes
		}
		if verbose {
			fmt.Printf("ok   seed %d on %-13v %d kills at %v, %d segments, ckpt %d bytes\n",
				seed, m, out.Kills, out.KillTargets, out.Segments, out.CkptBytes)
		}
	}
	fmt.Printf("kill-resume: %d/%d runs green on %s; %d kills taken, last checkpoint %d bytes\n",
		runs-failures, runs, wl.Name, totalKills, lastCkpt)
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	if logger == nil {
		logger = slog.Default()
	}
	logger.Error(err.Error())
	os.Exit(1)
}

// Command ildpvm runs an Alpha program (a named workload, an assembly
// source file, or an alphaasm image) through the co-designed virtual
// machine, and reports the dynamic binary translation statistics —
// optionally with a disassembly of the hottest translated fragments and a
// timing-model IPC estimate.
//
// A run can be preempted — by a wall-clock -deadline or the -max
// V-instruction budget — at a precise V-instruction boundary (exit
// status 3), checkpointed to a file with -checkpoint, and later
// continued bit-identically with -resume.
//
// Translated fragments can persist across runs: -cachefile loads a
// shared fragment store from the named file when it exists (every
// loaded fragment is re-verified, and -cache-prove additionally
// re-proved, before it becomes visible) and saves the store back on
// exit, so a warm second run translates nothing it has seen before.
// -cache-stats reports hit/miss/load counters. See docs/FORMAT.md for
// the on-disk format.
//
// The guest can be governed with -max-pages: exceeding the resident
// page cap raises a precise, typed resource trap at the faulting V-PC
// (exit status 2). With -bundle FILE any failing run — a guest trap, a
// resource kill — is recorded as a flight-recorder repro bundle that
// `ildpchaos -replay FILE` re-executes to the identical failure.
//
// With -serve ADDR the process attaches the live telemetry plane
// (DESIGN.md §13): Prometheus exposition on /metrics, an SSE event
// stream on /events, session introspection on /vms, and health checks
// on /healthz and /readyz. The plane stays up after the run finishes,
// serving the final state, until the process is interrupted.
//
// Usage:
//
//	ildpvm -workload gzip -form modified -chain sw_pred.ras
//	ildpvm -src prog.s -threshold 20 -dump 3
//	ildpvm -img prog.img -timing
//	ildpvm -workload gzip -max 100000 -checkpoint state.ckpt
//	ildpvm -resume state.ckpt
//	ildpvm -workload gzip -cachefile gzip.fs -cache-stats
//	ildpvm -workload membomb -max-pages 64 -bundle crash.bundle
//	ildpvm -workload gzip -serve 127.0.0.1:9844
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/ildp/accdbt/internal/alpha/alphaasm"
	"github.com/ildp/accdbt/internal/alphaprog"
	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/faultinject"
	"github.com/ildp/accdbt/internal/flight"
	"github.com/ildp/accdbt/internal/fragstore"
	"github.com/ildp/accdbt/internal/ildp"
	"github.com/ildp/accdbt/internal/iofs"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/metrics"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/tcache"
	"github.com/ildp/accdbt/internal/telemetry"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/uarch"
	"github.com/ildp/accdbt/internal/vm"
	"github.com/ildp/accdbt/internal/workload"
)

// logger carries the process-wide structured logger, built from
// -log-level / -log-format right after flag parsing. Diagnostics go
// through it; the stdout report format is unchanged.
var logger *slog.Logger

func main() {
	wl := flag.String("workload", "", "run a named synthetic workload (see -list)")
	list := flag.Bool("list", false, "list available workloads")
	srcFile := flag.String("src", "", "run an Alpha assembly source file")
	imgFile := flag.String("img", "", "run an alphaasm program image")
	scale := flag.Int("scale", 1, "workload scale factor")
	form := flag.String("form", "modified", "I-ISA form: basic | modified | straighten")
	chain := flag.String("chain", "sw_pred.ras", "chaining: no_pred | sw_pred.no_ras | sw_pred.ras")
	threshold := flag.Int("threshold", 50, "hot-trace threshold")
	numAcc := flag.Int("acc", 4, "logical accumulators (basic/modified)")
	maxV := flag.Int64("max", 0, "V-instruction budget (0 = unlimited)")
	fuse := flag.Bool("fuse", false, "unsplit memory operations (the §4.5 extension)")
	dump := flag.Int("dump", 0, "disassemble the N hottest translated fragments")
	hot := flag.Int("hot", 0, "attach the execution profiler and print the N hottest fragments by cycles (implies -timing)")
	metricsJSON := flag.Bool("metrics", false, "collect a metrics registry (counters + fragment lifecycle events) and dump it as JSON")
	timing := flag.Bool("timing", false, "attach the matching timing model and report IPC")
	pes := flag.Int("pes", 8, "ILDP processing elements (with -timing)")
	commLat := flag.Int64("comm", 0, "ILDP global wire latency in cycles (with -timing)")
	chaos := flag.String("chaos", "", "enable deterministic fault injection with this decimal seed (forces verify + paranoid + self-heal)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline; on expiry the run preempts at a precise V-instruction boundary (exit status 3)")
	ckptFile := flag.String("checkpoint", "", "write a checkpoint of the final architected state to this file (pairs with -deadline or -max)")
	resumeFile := flag.String("resume", "", "restore architected state from this checkpoint file and continue (replaces -workload/-src/-img)")
	watchdog := flag.Int64("watchdog", 0, "livelock watchdog window in work units (0 = off)")
	maxPages := flag.Int("max-pages", 0, "guest page limit; exceeding it raises a precise resource trap at the faulting V-PC (0 = ungoverned)")
	bundleFile := flag.String("bundle", "", "on a failing run (trap, resource kill, crash), write a flight-recorder repro bundle to this file (replay with ildpchaos -replay)")
	cacheFile := flag.String("cachefile", "", "persistent translation cache: load this file if it exists, share the store with the run, save it back on exit")
	cacheStats := flag.Bool("cache-stats", false, "report shared-store statistics (attaches an in-memory store even without -cachefile)")
	cacheProve := flag.Bool("cache-prove", false, "with -cachefile, also re-prove loaded fragments with the symbolic equivalence checker")
	serve := flag.String("serve", "", "serve the live telemetry plane (/metrics, /events, /vms, /healthz) on this address and keep serving after the run until interrupted")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log format: text | json")
	flag.Parse()

	var err error
	logger, err = telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ildpvm:", err)
		os.Exit(2)
	}

	if *list {
		for _, name := range workload.Names() {
			s, _ := workload.ByName(name, 1)
			fmt.Printf("  %-8s %s\n", name, s.Description)
		}
		return
	}

	var prog *alphaprog.Program
	var name string
	var resumeState *checkpoint.State
	var resumeRaw []byte // encoded resume checkpoint, kept for -bundle
	if *resumeFile != "" {
		data, err := os.ReadFile(*resumeFile)
		if err != nil {
			fatal(err)
		}
		resumeState, err = checkpoint.Decode(data)
		if err != nil {
			fatal(err)
		}
		resumeRaw = data
		name = *resumeFile
	} else {
		prog, name = loadProgram(*wl, *srcFile, *imgFile, *scale)
	}

	cfg := vm.DefaultConfig()
	cfg.HotThreshold = *threshold
	cfg.NumAcc = *numAcc
	cfg.FuseMemOps = *fuse
	cfg.MaxPages = *maxPages
	cfg.WatchdogWindow = *watchdog
	if *deadline > 0 {
		var expired atomic.Bool
		timer := time.AfterFunc(*deadline, func() { expired.Store(true) })
		defer timer.Stop()
		cfg.Stop = expired.Load
	}
	switch *chain {
	case "no_pred":
		cfg.Chain = translate.NoPred
	case "sw_pred.no_ras":
		cfg.Chain = translate.SWPred
	case "sw_pred.ras":
		cfg.Chain = translate.SWPredRAS
	default:
		fatal(fmt.Errorf("unknown chaining mode %q", *chain))
	}
	switch *form {
	case "basic":
		cfg.Form = ildp.Basic
	case "modified":
		cfg.Form = ildp.Modified
	case "straighten":
		cfg.Straighten = true
	default:
		fatal(fmt.Errorf("unknown form %q", *form))
	}

	if *chaos != "" {
		seed, err := strconv.ParseUint(*chaos, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("-chaos wants a decimal seed: %w", err))
		}
		cfg.Verify = true
		cfg.Paranoid = true
		cfg.SelfHeal = true
		cfg.Faults = &faultinject.Config{Seed: seed}
	}

	var store *fragstore.Store
	var loadRep *fragstore.LoadReport
	if *cacheFile != "" || *cacheStats {
		store = fragstore.New()
		if *cacheFile != "" {
			data, err := os.ReadFile(*cacheFile)
			switch {
			case err == nil:
				store, loadRep, err = fragstore.Decode(data, fragstore.LoadOptions{SemCheck: *cacheProve})
				if err != nil {
					fatal(fmt.Errorf("loading %s: %w", *cacheFile, err))
				}
			case !errors.Is(err, fs.ErrNotExist):
				fatal(err)
			}
		}
		cfg.Store = store
	}

	var reg *metrics.Registry
	if *metricsJSON || *serve != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}

	var profiler *prof.Profiler
	if *hot > 0 {
		*timing = true
		profiler = prof.New(prof.Config{})
		cfg.Prof = profiler
	}

	var ooo *uarch.OoO
	var core *uarch.ILDP
	if *timing {
		if cfg.Straighten {
			mc := uarch.DefaultOoO()
			mc.UseHWRAS = false
			mc.DualRASTrace = cfg.Chain == translate.SWPredRAS
			ooo = uarch.NewOoO(mc)
			ooo.SetProfiler(profiler)
			cfg.Sink = ooo
		} else {
			mc := uarch.DefaultILDP()
			mc.PEs = *pes
			mc.CommLat = *commLat
			mc.CacheOpts.Replicas = *pes
			mc.DualRASTrace = cfg.Chain == translate.SWPredRAS
			core = uarch.NewILDP(mc)
			core.SetProfiler(profiler)
			cfg.Sink = core
		}
	}

	var plane *telemetry.Plane
	var sess *telemetry.Session
	if *serve != "" {
		plane = telemetry.New(telemetry.Options{Logger: logger})
		sess = plane.Register(telemetry.SessionConfig{
			Name: name, Workload: name, Machine: machineName(cfg),
			Registry: reg, Store: store,
		})
		cfg.Poll = sess.Poll
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry:          serving on http://%s\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, plane.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Error("telemetry server failed", "err", err)
			}
		}()
		plane.SetReady(true)
	}

	v := vm.New(mem.New(), cfg)
	if resumeState != nil {
		v.Restore(resumeState)
	} else if err := v.LoadProgram(prog); err != nil {
		fatal(err)
	}
	if sess != nil {
		sess.Attach(v, profiler)
	}
	var pe *vm.PreemptError
	if runErr := v.Run(*maxV); runErr != nil && !errors.As(runErr, &pe) {
		if *bundleFile != "" {
			writeBundle(*bundleFile, v, cfg, runErr, prog, resumeRaw, *maxV, name)
		}
		var tr *emu.Trap
		if errors.As(runErr, &tr) {
			kind, _ := flight.Classify(runErr)
			logger.Error(kind, "vpc", fmt.Sprintf("%#x", tr.PC), "cause", tr.Cause)
			os.Exit(2)
		}
		fatal(runErr)
	}
	if sess != nil {
		sess.Finish()
	}

	report(name, v, cfg)
	if pe != nil {
		cause := "deadline"
		if errors.Is(pe, vm.ErrBudget) {
			cause = "budget"
		}
		fmt.Printf("preempted:          %s at V-PC %#x after %d V-insts\n",
			cause, pe.PC, v.Stats.TotalVInsts())
	}
	if inj := v.Injector(); inj != nil {
		s := &v.Stats
		fmt.Printf("chaos:              %d faults applied over %d decisions (%s)\n",
			inj.Counts().Total(), inj.Decisions(), inj.Counts())
		fmt.Printf("recovery:           %d episodes (%d reverify, %d spurious, %d evict, %d trans-fail, %d stale), %d quarantined, %d fallback insts, cost %d\n",
			s.Recoveries(), s.ReverifyFails, s.SpuriousTraps, s.ForcedEvicts,
			s.TransFailures, s.StaleLinks, s.Quarantines, s.FallbackInsts, s.RecoveryCost)
	}
	if ooo != nil {
		r := ooo.Finish()
		printTiming("out-of-order superscalar", r)
		r.Publish(reg, "uarch.ooo")
	}
	if core != nil {
		r := core.Finish()
		printTiming(fmt.Sprintf("ILDP %d-PE", *pes), r)
		r.Publish(reg, "uarch.ildp")
	}
	if *dump > 0 {
		dumpFragments(v, *dump)
	}
	if profiler != nil {
		fmt.Printf("\nhot fragments:\n")
		if err := profiler.Profile().WriteHotTable(os.Stdout, *hot); err != nil {
			fatal(err)
		}
	}
	if *metricsJSON {
		v.Stats.Publish(reg)
		fmt.Printf("metrics events:     %d recorded, %d dropped by the ring\n",
			reg.EventsRecorded(), reg.EventsDropped())
		out, err := json.MarshalIndent(reg, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics:\n%s\n", out)
	}
	if store != nil {
		if *cacheStats {
			fmt.Printf("cache store:        %s\n", store.Stats())
			if loadRep != nil {
				fmt.Printf("cache load:         %s\n", loadRep)
			}
			fmt.Printf("cache this run:     %d hits (%d shared), %d misses\n",
				v.Stats.StoreHits, v.Stats.StoreSharedHits, v.Stats.StoreMisses)
		}
		if *cacheFile != "" {
			// Atomic write-temp-rename: a crash or a full disk partway
			// through the save never clobbers a good existing cache file.
			data := store.Encode()
			if err := iofs.AtomicWriteFile(iofs.OS{}, *cacheFile, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("cache file:         %d fragments, %d bytes -> %s\n",
				store.Len(), len(data), *cacheFile)
		}
	}
	if *ckptFile != "" {
		data := checkpoint.Encode(v.Checkpoint())
		if err := iofs.AtomicWriteFile(iofs.OS{}, *ckptFile, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint:         %d bytes -> %s\n", len(data), *ckptFile)
	}
	if plane != nil {
		logger.Info("run finished; telemetry plane still serving", "addr", *serve)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		plane.Close()
	}
	if pe != nil {
		os.Exit(3)
	}
}

// writeBundle records a failing run as a flight-recorder repro bundle
// (DESIGN.md §15) that `ildpchaos -replay` re-executes to the identical
// failure. Clean halts and ordinary preemptions are never bundled.
func writeBundle(path string, v *vm.VM, cfg vm.Config, runErr error,
	prog *alphaprog.Program, resumeRaw []byte, budget int64, name string) {
	kind, failure := flight.Classify(runErr)
	if !failure {
		return
	}
	b := &flight.Bundle{
		Kind:       kind,
		VPC:        v.CPU().PC,
		Cause:      runErr.Error(),
		Config:     flight.CaptureConfig(cfg),
		Faults:     cfg.Faults,
		Budget:     budget,
		Checkpoint: resumeRaw,
		Counters:   v.Checkpoint().Counters,
		Events:     []string{"program: " + name, "failure: " + runErr.Error()},
	}
	if resumeRaw == nil && prog != nil {
		var buf bytes.Buffer
		if err := prog.Save(&buf); err != nil {
			logger.Error("bundle: encoding program image", "err", err)
			return
		}
		b.Program = buf.Bytes()
	}
	if err := iofs.AtomicWriteFile(iofs.OS{}, path, flight.Encode(b), 0o644); err != nil {
		logger.Error("bundle: writing", "path", path, "err", err)
		return
	}
	fmt.Printf("bundle:             %s failure recorded -> %s\n", kind, path)
}

func loadProgram(wl, src, img string, scale int) (*alphaprog.Program, string) {
	switch {
	case wl != "":
		spec, err := workload.ByName(wl, scale)
		if err != nil {
			fatal(err)
		}
		p, err := spec.Program()
		if err != nil {
			fatal(err)
		}
		return p, wl
	case src != "":
		text, err := os.ReadFile(src)
		if err != nil {
			fatal(err)
		}
		p, err := alphaasm.Assemble(string(text))
		if err != nil {
			fatal(err)
		}
		return p, src
	case img != "":
		f, err := os.Open(img)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		p, err := alphaprog.Load(f)
		if err != nil {
			fatal(err)
		}
		return p, img
	}
	logger.Error("one of -workload, -src, or -img is required (see -list)")
	os.Exit(2)
	return nil, ""
}

// machineName names the configured I-ISA form the way the report and
// the telemetry session label do.
func machineName(cfg vm.Config) string {
	if cfg.Straighten {
		return "straightened"
	}
	return cfg.Form.String()
}

func report(name string, v *vm.VM, cfg vm.Config) {
	s := &v.Stats
	fmt.Printf("program:            %s (%s, %v)\n", name, machineName(cfg), cfg.Chain)
	fmt.Printf("exit status:        %d, console %q\n", v.CPU().ExitStatus, v.CPU().ConsoleString())
	fmt.Printf("V-insts total:      %d (interpreted %d, translated %d, %.1f%% translated)\n",
		s.TotalVInsts(), s.InterpInsts, s.TransVInsts,
		100*float64(s.TransVInsts)/float64(s.TotalVInsts()))
	fmt.Printf("I-insts executed:   %d (expansion %.2fx)\n", s.TransIInsts,
		float64(s.TransIInsts)/float64(max64(s.TransVInsts, 1)))
	fmt.Printf("fragments:          %d (%d source insts, %d NOPs removed, %d branches straightened)\n",
		s.Fragments, s.SrcInstsTranslated, s.NOPsRemoved, s.BranchElims)
	fmt.Printf("translation cost:   %d work units (%.0f per source inst)\n",
		s.TranslateCost, float64(s.TranslateCost)/float64(max64i(s.SrcInstsTranslated, 1)))
	fmt.Printf("copies executed:    %d (%.1f%% of I-insts)\n", s.CopiesExecuted,
		100*float64(s.CopiesExecuted)/float64(max64(s.TransIInsts, 1)))
	fmt.Printf("chaining:           %d dispatch runs (%d hit), sw-pred %d/%d hit, dual-RAS %d/%d hit, %d patches\n",
		s.DispatchRuns, s.DispatchHits,
		s.SWPredHits, s.SWPredHits+s.SWPredMisses,
		s.RASHits, s.RASHits+s.RASMisses, v.TCache().Patches)
	fmt.Printf("static code:        %d I-bytes for %d V-bytes (%.2fx)\n",
		s.StaticCodeBytes, s.StaticSrcBytes,
		float64(s.StaticCodeBytes)/float64(max64i(s.StaticSrcBytes, 1)))
}

func printTiming(machine string, r uarch.Result) {
	fmt.Printf("timing (%s):\n", machine)
	fmt.Printf("  cycles %d, V-IPC %.2f, native IPC %.2f\n", r.Cycles, r.IPC(), r.NativeIPC())
	fmt.Printf("  mispredicts/1000: %.2f (cond %d, target %d, misfetch %d)\n",
		r.MispredictsPer1000(), r.CondMispredicts, r.TargetMispredicts, r.Misfetches)
	fmt.Printf("  cache misses: I %d, D %d, L2 %d\n", r.ICacheMisses, r.DCacheMisses, r.L2Misses)
	fmt.Printf("  stalls: icache %d, dcache %d, redirects %d cycles\n",
		r.ICacheStall, r.DCacheStall, r.RedirectLoss)
}

func dumpFragments(v *vm.VM, n int) {
	tc := v.TCache()
	var frags []*tcache.Fragment
	for id := int32(0); int(id) < tc.Len(); id++ {
		if f := tc.Frag(id); f != nil { // invalidated slots stay nil
			frags = append(frags, f)
		}
	}
	sort.Slice(frags, func(i, j int) bool {
		return frags[i].ExecCount > frags[j].ExecCount
	})
	if n > len(frags) {
		n = len(frags)
	}
	for _, f := range frags[:n] {
		fmt.Printf("\nfragment %d: V %#x, %d entries, %d insts\n",
			f.ID, f.VStart, f.ExecCount, len(f.Insts))
		for i := range f.Insts {
			fmt.Printf("  %#010x: %s\n", f.IAddrs[i], f.Insts[i].String())
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func max64i(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	if logger == nil {
		logger = slog.Default()
	}
	logger.Error(err.Error())
	os.Exit(1)
}

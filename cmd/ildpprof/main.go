// Command ildpprof runs a workload through the DBT with the execution
// profiler attached and reports where the cycles went: a hot-fragment
// table (top-N by cycles, with strand shape and exit-reason breakdown),
// a chain-transition summary, an optional Chrome trace-event / Perfetto
// JSON timeline, and an optional folded-stack file for flamegraph
// tooling.
//
// Usage:
//
//	ildpprof -workload gzip -top 20
//	ildpprof -workload bzip -trace out.json          # open in ui.perfetto.dev
//	ildpprof -workload sort -folded out.folded       # flamegraph.pl / inferno
//	ildpprof -workload gzip -machine straightened -chain sw_pred.no_ras
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ildp/accdbt/internal/experiments"
	"github.com/ildp/accdbt/internal/prof"
	"github.com/ildp/accdbt/internal/translate"
	"github.com/ildp/accdbt/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "named synthetic workload to profile (see -list)")
	list := flag.Bool("list", false, "list available workloads")
	scale := flag.Int("scale", 1, "workload scale factor")
	machine := flag.String("machine", "ildp-modified",
		"machine: original | straightened | ildp-basic | ildp-modified")
	chain := flag.String("chain", "sw_pred.ras", "chaining: no_pred | sw_pred.no_ras | sw_pred.ras")
	threshold := flag.Int("threshold", 0, "hot-trace threshold (0 = the paper's default)")
	numAcc := flag.Int("acc", 0, "logical accumulators (0 = default)")
	pes := flag.Int("pes", 8, "ILDP processing elements")
	commLat := flag.Int64("comm", 0, "ILDP global wire latency in cycles")
	maxV := flag.Int64("max", 0, "V-instruction budget (0 = unlimited)")

	top := flag.Int("top", 10, "hot-fragment table rows (0 = all)")
	chains := flag.Bool("chains", true, "print the chain-transition summary")
	traceOut := flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON timeline to this file")
	foldedOut := flag.String("folded", "", "write folded stacks (frag;strand cycles) to this file, or - for stdout")
	events := flag.Int("events", 0, "trace-event ring capacity (0 = default 65536)")
	sample := flag.Int("sample", 1, "record ring events for every Nth frame activation")
	selfcheck := flag.Bool("selfcheck", false,
		"verify cycle conservation against the timing model and validate the trace JSON")
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			s, _ := workload.ByName(name, 1)
			fmt.Printf("  %-8s %s\n", name, s.Description)
		}
		return
	}
	if *wl == "" {
		fmt.Fprintln(os.Stderr, "ildpprof: -workload is required (see -list)")
		os.Exit(2)
	}

	spec, err := workload.ByName(*wl, *scale)
	if err != nil {
		fatal(err)
	}

	var mach experiments.Machine
	switch *machine {
	case "original":
		mach = experiments.Original
	case "straightened":
		mach = experiments.Straightened
	case "ildp-basic":
		mach = experiments.ILDPBasic
	case "ildp-modified":
		mach = experiments.ILDPModified
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
	var cm translate.ChainMode
	switch *chain {
	case "no_pred":
		cm = translate.NoPred
	case "sw_pred.no_ras":
		cm = translate.SWPred
	case "sw_pred.ras":
		cm = translate.SWPredRAS
	default:
		fatal(fmt.Errorf("unknown chaining mode %q", *chain))
	}

	p := prof.New(prof.Config{Capacity: *events, SampleEvery: *sample})
	out, err := experiments.Run(experiments.RunSpec{
		Workload: spec, Machine: mach, Chain: cm,
		NumAcc: *numAcc, PEs: *pes, CommLat: *commLat,
		HotThreshold: *threshold, MaxV: *maxV,
		Timing: true, Prof: p,
	})
	if err != nil {
		fatal(err)
	}

	pr := p.Profile()
	fmt.Printf("workload %s on %v (%v): %d cycles, V-IPC %.2f, %d records profiled\n\n",
		*wl, mach, cm, out.Timing.Cycles, out.Timing.IPC(), p.Retires())
	if err := pr.WriteHotTable(os.Stdout, *top); err != nil {
		fatal(err)
	}
	if *chains {
		fmt.Printf("\nchain transitions:\n")
		if err := pr.WriteChainSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *selfcheck {
		if err := pr.CheckConservation(out.Timing.Cycles); err != nil {
			fatal(err)
		}
		var buf bytes.Buffer
		if err := p.WritePerfetto(&buf); err != nil {
			fatal(err)
		}
		if err := prof.ValidateTrace(buf.Bytes()); err != nil {
			fatal(err)
		}
		fmt.Printf("\nselfcheck: cycle conservation and trace schema OK\n")
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, p.WritePerfetto); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace: %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if *foldedOut != "" {
		if *foldedOut == "-" {
			fmt.Println()
			if err := pr.WriteFolded(os.Stdout); err != nil {
				fatal(err)
			}
		} else if err := writeFile(*foldedOut, pr.WriteFolded); err != nil {
			fatal(err)
		} else {
			fmt.Printf("folded stacks: %s (feed to flamegraph.pl or speedscope)\n", *foldedOut)
		}
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := write(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ildpprof:", err)
	os.Exit(1)
}

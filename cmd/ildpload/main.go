// Command ildpload is the serving load driver: it simulates many
// concurrent clients submitting guest programs to an ildpserve
// instance, long-polling each session to completion, retrying typed
// 429 backpressure with backoff, and optionally differentially
// verifying a sample of final checkpoints against the pure-interpreter
// oracle. It reports sessions/sec and the scheduler's quantum/wait
// latency quantiles — as text, or with -json as a schema-versioned
// report (experiment "serve") that `ildpreport -validate` accepts and
// EXPERIMENTS.md cites.
//
// By default the driver spins up an in-process server on a loopback
// port so a single command measures the whole stack; -addr targets an
// already-running ildpserve instead (its -workers flag is then only a
// label for the report row).
//
// Usage:
//
//	ildpload -sessions 200 -clients 32 -workers 8
//	ildpload -sessions 500 -clients 64 -verify 20 -json > reports/serve-load.json
//	ildpload -addr 127.0.0.1:9855 -sessions 1000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ildp/accdbt/internal/checkpoint"
	"github.com/ildp/accdbt/internal/emu"
	"github.com/ildp/accdbt/internal/mem"
	"github.com/ildp/accdbt/internal/report"
	"github.com/ildp/accdbt/internal/serve"
	"github.com/ildp/accdbt/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "target an external ildpserve (default: in-process server)")
	sessions := flag.Int("sessions", 200, "total sessions to submit")
	clients := flag.Int("clients", 32, "concurrent submitting clients")
	workers := flag.Int("workers", 8, "worker pool size for the in-process server (and the report row label)")
	quantum := flag.Int64("quantum", 15_000, "scheduler quantum in V-instructions (in-process server)")
	maxSessions := flag.Int("max-sessions", 256, "in-process admission bound; drives 429 backpressure when sessions exceed it")
	scale := flag.Int("scale", 1, "workload scale factor")
	names := flag.String("workloads", "", "comma-separated workload names (default: all)")
	verify := flag.Int("verify", 0, "differentially verify the final checkpoint of every Nth session against the interpreter oracle")
	jsonOut := flag.Bool("json", false, "emit a schema-versioned JSON report (experiment \"serve\") instead of text")
	flag.Parse()

	wls := workload.Names()
	if *names != "" {
		wls = strings.Split(*names, ",")
	}
	if *clients > *sessions {
		*clients = *sessions
	}

	base := *addr
	if base == "" {
		s := serve.New(serve.Options{
			Workers:       *workers,
			QuantumVInsts: *quantum,
			MaxSessions:   *maxSessions,
		})
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		httpSrv := &http.Server{Handler: s.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "ildpload: in-process server on http://%s (%d workers, quantum %d)\n",
			base, *workers, *quantum)
	}
	url := "http://" + base

	type job struct {
		id       string
		name     string
		seed     uint64
		view     serve.View
		rejected int
	}
	jobs := make([]*job, *sessions)
	for i := range jobs {
		jobs[i] = &job{name: wls[i%len(wls)], seed: uint64(i / len(wls) % 8)}
	}

	var idx, rejections atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				tenant := fmt.Sprintf("tenant-%d", cn%7)
				// Submit, honoring typed backpressure with backoff.
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(fmt.Sprintf("%s/sessions?workload=%s&scale=%d&seed=%d&tenant=%s",
						url, j.name, *scale, j.seed, tenant), "application/octet-stream", nil)
					if err != nil {
						fatal(err)
					}
					if resp.StatusCode == http.StatusAccepted {
						if err := json.NewDecoder(resp.Body).Decode(&j.view); err != nil {
							fatal(err)
						}
						resp.Body.Close()
						j.id = j.view.ID
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
						j.rejected++
						rejections.Add(1)
						time.Sleep(time.Duration(5*(attempt+1)) * time.Millisecond)
						continue
					}
					fatal(fmt.Errorf("submit %s: HTTP %d", j.name, resp.StatusCode))
				}
				// Long-poll to completion.
				for !j.view.State.Terminal() {
					resp, err := client.Get(url + "/sessions/" + j.id + "?wait=2000")
					if err != nil {
						fatal(err)
					}
					if err := json.NewDecoder(resp.Body).Decode(&j.view); err != nil {
						fatal(err)
					}
					resp.Body.Close()
				}
				if j.view.State != serve.StateDone {
					fatal(fmt.Errorf("session %s (%s): %s: %s", j.id, j.name, j.view.State, j.view.Error))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Scheduler snapshot for the latency quantiles.
	resp, err := client.Get(url + "/stats")
	if err != nil {
		fatal(err)
	}
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fatal(err)
	}
	resp.Body.Close()

	// Differential sample: decode final checkpoints and compare the
	// guest-visible state against an uninterrupted interpreter run.
	verified := 0
	if *verify > 0 {
		for i := 0; i < len(jobs); i += *verify {
			j := jobs[i]
			resp, err := client.Get(url + "/sessions/" + j.id + "/checkpoint")
			if err != nil {
				fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				fatal(fmt.Errorf("checkpoint %s: HTTP %d", j.id, resp.StatusCode))
			}
			st, err := checkpoint.Decode(raw)
			if err != nil {
				fatal(fmt.Errorf("checkpoint %s: %w", j.id, err))
			}
			if err := verifyAgainstOracle(st, j.name, *scale, j.seed); err != nil {
				fatal(fmt.Errorf("DIVERGENCE session %s (%s seed=%d): %w", j.id, j.name, j.seed, err))
			}
			verified++
		}
	}

	sps := float64(*sessions) / elapsed.Seconds()
	quantaPerSession := float64(stats.Quanta) / float64(*sessions)
	if *jsonOut {
		bench := fmt.Sprintf("%dx%d", *sessions, stats.Workers)
		r := &report.Report{
			Schema: report.SchemaVersion,
			Meta: report.Meta{
				Generator:   "ildpload",
				Scale:       *scale,
				Threshold:   50,
				Chain:       "sw_pred.ras",
				NumAcc:      4,
				Experiments: []string{"serve"},
				Workloads:   wls,
			},
			Records: []report.Record{
				{Exp: "serve", Series: "sessions", Bench: bench, Value: float64(*sessions), Unit: "count"},
				{Exp: "serve", Series: "workers", Bench: bench, Value: float64(stats.Workers), Unit: "count"},
				{Exp: "serve", Series: "sessions_per_sec", Bench: bench, Value: sps, Unit: "persec"},
				{Exp: "serve", Series: "quantum_p50_ms", Bench: bench, Value: stats.QuantumP50ms, Unit: "ms"},
				{Exp: "serve", Series: "quantum_p99_ms", Bench: bench, Value: stats.QuantumP99ms, Unit: "ms"},
				{Exp: "serve", Series: "wait_p99_ms", Bench: bench, Value: stats.WaitP99ms, Unit: "ms"},
				{Exp: "serve", Series: "quanta_per_session", Bench: bench, Value: quantaPerSession, Unit: "count"},
			},
			Timings: []report.Timing{{Name: "total", Millis: float64(elapsed.Milliseconds())}},
		}
		if err := r.Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("sessions:           %d across %d clients (%d workers)\n", *sessions, *clients, stats.Workers)
	fmt.Printf("wall time:          %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput:         %.1f sessions/sec\n", sps)
	fmt.Printf("quanta:             %d (%.1f per session)\n", stats.Quanta, quantaPerSession)
	fmt.Printf("quantum latency:    p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		stats.QuantumP50ms, stats.QuantumP95ms, stats.QuantumP99ms)
	fmt.Printf("queue wait:         p50 %.2f ms, p99 %.2f ms\n", stats.WaitP50ms, stats.WaitP99ms)
	fmt.Printf("backpressure:       %d retried rejections\n", rejections.Load())
	if *verify > 0 {
		fmt.Printf("verified:           %d/%d final states bit-identical to interpreter oracle\n",
			verified, verified)
	}
}

// verifyAgainstOracle replays the program on the pure interpreter and
// compares every guest-visible field of the served final checkpoint.
func verifyAgainstOracle(st *checkpoint.State, name string, scale int, seed uint64) error {
	spec, err := workload.ByNameSeeded(name, scale, seed)
	if err != nil {
		return err
	}
	prog, err := spec.Program()
	if err != nil {
		return err
	}
	cpu := emu.New(mem.New())
	if err := cpu.LoadProgram(prog); err != nil {
		return err
	}
	if err := cpu.Run(1_000_000_000); err != nil {
		return err
	}
	if st.Halted != cpu.Halted || st.ExitStatus != cpu.ExitStatus {
		return fmt.Errorf("halted/exit = %v/%d, want %v/%d", st.Halted, st.ExitStatus, cpu.Halted, cpu.ExitStatus)
	}
	if st.PC != cpu.PC {
		return fmt.Errorf("PC = %#x, want %#x", st.PC, cpu.PC)
	}
	if st.Reg != cpu.Reg {
		return fmt.Errorf("register file differs")
	}
	if string(st.Console) != cpu.ConsoleString() {
		return fmt.Errorf("console differs")
	}
	m := mem.New()
	m.LoadSnapshot(st.Pages)
	if ok, addr := mem.Equal(m, cpu.Mem); !ok {
		return fmt.Errorf("memory differs at %#x", addr)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ildpload:", err)
	os.Exit(1)
}

package accdbt_test

import (
	"fmt"

	"github.com/ildp/accdbt"
)

// Example shows the end-to-end flow: assemble an Alpha program, run it
// through the co-designed VM, and inspect the translation statistics.
func Example() {
	prog := accdbt.MustAssemble(`
	.text 0x10000
start:
	ldiq  a0, 100
	clr   v0
loop:
	addq  v0, a0, v0
	subq  a0, #1, a0
	bne   a0, loop
	call_pal halt
`)
	cfg := accdbt.DefaultVMConfig()
	cfg.HotThreshold = 10
	v := accdbt.NewVM(accdbt.NewMemory(), cfg)
	if err := v.LoadProgram(prog); err != nil {
		panic(err)
	}
	if err := v.Run(0); err != nil {
		panic(err)
	}
	fmt.Println("v0:", v.CPU().Reg[0])
	fmt.Println("fragments:", v.Stats.Fragments)
	// Output:
	// v0: 5050
	// fragments: 1
}

// ExampleTranslate translates the paper's Figure 2 loop directly and
// prints it in the paper's notation.
func ExampleTranslate() {
	prog := accdbt.MustAssemble(`
	.text 0x12000
L1:
	ldbu   t2, 0(a0)
	subl   a1, #1, a1
	xor    t2, t0, t0
	bne    a1, L1
`)
	seg := prog.Segments[0]
	sb := &accdbt.Superblock{StartPC: 0x12000, NextPC: 0x12010}
	for off := 0; off+4 <= len(seg.Data); off += 4 {
		w := uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
			uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24
		rec := accdbt.SBInst{PC: 0x12000 + uint64(off), Inst: accdbt.DecodeAlpha(w)}
		if rec.Inst.IsCondBranch() {
			rec.Taken = true
		}
		sb.Insts = append(sb.Insts, rec)
	}
	sb.End = 1 // backward taken branch ends the fragment

	res, err := accdbt.Translate(sb, accdbt.TranslateConfig{
		Form: accdbt.Modified, NumAcc: 4, Chain: accdbt.SWPredRAS,
	})
	if err != nil {
		panic(err)
	}
	for i := range res.Insts {
		fmt.Println(res.Insts[i].String())
	}
	// Output:
	// vpc <- 0x12000
	// R3 (A0) <- mem[R16]
	// R17 (A1) <- R17 subl #1
	// R1 (A0) <- A0 xor R1
	// call-translator 0x12000, if bne(A1)
	// call-translator 0x12010
}

// ExampleDisassembleAlpha decodes a raw Alpha instruction word.
func ExampleDisassembleAlpha() {
	// s8addq t2, v0, t2 : opcode 0x10, fn 0x32
	w := uint32(0x10<<26 | 3<<21 | 0<<16 | 0x32<<5 | 3)
	fmt.Println(accdbt.DisassembleAlpha(w, 0x1000))
	// Output:
	// s8addq t2, v0, t2
}

// ExampleWorkloadByName runs a synthetic SPEC stand-in under the
// experiment harness.
func ExampleWorkloadByName() {
	w, err := accdbt.WorkloadByName("gzip", 1)
	if err != nil {
		panic(err)
	}
	out, err := accdbt.RunExperiment(accdbt.RunSpec{
		Workload: w, Machine: accdbt.MachineILDPModified,
		Chain: accdbt.SWPredRAS, HotThreshold: 25,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("translated most of the run:",
		float64(out.VM.TransVInsts)/float64(out.VM.TotalVInsts()) > 0.9)
	// Output:
	// translated most of the run: true
}

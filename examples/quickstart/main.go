// Quickstart: assemble a small Alpha program, run it through the
// co-designed virtual machine, and watch the dynamic binary translator
// turn its hot loop into an accumulator-ISA fragment.
package main

import (
	"fmt"

	"github.com/ildp/accdbt"
)

const src = `
	.text 0x10000
start:
	ldiq  a0, 2000        ; loop count
	clr   v0
loop:
	addq  v0, a0, v0      ; v0 += a0
	subq  a0, #1, a0
	bne   a0, loop
	call_pal halt
`

func main() {
	prog := accdbt.MustAssemble(src)

	cfg := accdbt.DefaultVMConfig()
	cfg.HotThreshold = 20 // translate after 20 visits (the paper uses 50)

	v := accdbt.NewVM(accdbt.NewMemory(), cfg)
	if err := v.LoadProgram(prog); err != nil {
		panic(err)
	}
	if err := v.Run(0); err != nil {
		panic(err)
	}

	fmt.Printf("result: v0 = %d (want %d)\n", v.CPU().Reg[0], 2000*2001/2)
	fmt.Printf("V-ISA instructions: %d total, %d executed as translated code (%.1f%%)\n",
		v.Stats.TotalVInsts(), v.Stats.TransVInsts,
		100*float64(v.Stats.TransVInsts)/float64(v.Stats.TotalVInsts()))
	fmt.Printf("fragments translated: %d\n\n", v.Stats.Fragments)

	// Show the translated loop in the paper's notation.
	tc := v.TCache()
	for id := int32(0); int(id) < tc.Len(); id++ {
		f := tc.Frag(id)
		fmt.Printf("fragment %d (from V-PC %#x, entered %d times):\n", f.ID, f.VStart, f.ExecCount)
		for i := range f.Insts {
			fmt.Printf("    %s\n", f.Insts[i].String())
		}
	}
}

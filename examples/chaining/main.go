// Chaining compares the three fragment-chaining implementations of §4.3
// on an indirect-jump-heavy interpreter workload (the perlbmk stand-in):
// always-dispatch (no_pred), software jump-target prediction (sw_pred),
// and software prediction plus the dual-address return address stack
// (sw_pred.ras). It reports dynamic instruction expansion, dispatch
// traffic, and timing-model mispredictions — the mechanisms behind the
// paper's Figures 4 and 5.
package main

import (
	"fmt"

	"github.com/ildp/accdbt"
)

func main() {
	modes := []struct {
		name string
		mode accdbt.ChainMode
	}{
		{"no_pred       ", accdbt.NoPred},
		{"sw_pred.no_ras", accdbt.SWPred},
		{"sw_pred.ras   ", accdbt.SWPredRAS},
	}

	for _, wl := range []string{"perlbmk", "vortex"} {
		fmt.Printf("workload %s:\n", wl)
		fmt.Println("  mode            expansion  dispatch-runs  sw-pred-hit%  ras-hit%  mispred/1000  V-IPC")
		for _, m := range modes {
			w, err := accdbt.WorkloadByName(wl, 1)
			if err != nil {
				panic(err)
			}
			out, err := accdbt.RunExperiment(accdbt.RunSpec{
				Workload: w, Machine: accdbt.MachineILDPModified,
				Chain: m.mode, Timing: true, HotThreshold: 25,
			})
			if err != nil {
				panic(err)
			}
			s := out.VM
			exp := float64(s.TransIInsts) / float64(s.TransVInsts)
			swTotal := s.SWPredHits + s.SWPredMisses
			swPct := 0.0
			if swTotal > 0 {
				swPct = 100 * float64(s.SWPredHits) / float64(swTotal)
			}
			rasTotal := s.RASHits + s.RASMisses
			rasPct := 0.0
			if rasTotal > 0 {
				rasPct = 100 * float64(s.RASHits) / float64(rasTotal)
			}
			fmt.Printf("  %s      %.2fx  %13d  %11.1f  %8.1f  %12.2f  %5.2f\n",
				m.name, exp, s.DispatchRuns, swPct, rasPct,
				out.Timing.MispredictsPer1000(), out.Timing.IPC())
		}
		fmt.Println()
	}
	fmt.Println("no_pred funnels every indirect jump through the 20-instruction dispatch")
	fmt.Println("routine; software prediction short-circuits the common target; the dual-")
	fmt.Println("address RAS removes the compare-and-branch sequence from returns entirely.")
}

// Gzipkernel reproduces the paper's Figure 2 end to end: the byte-
// processing loop from 164.gzip is assembled, collected as a superblock,
// and translated to both the Basic and the Modified accumulator ISAs. The
// output shows the strand assignments (A0..A3), the Basic form's explicit
// copy-to-GPR instructions, and the Modified form's destination-register
// specifiers — exactly the comparison of §2.
package main

import (
	"fmt"

	"github.com/ildp/accdbt"
)

// The Fig. 2 example: r16=a0 (byte pointer), r17=a1 (count), r1=t0
// (checksum state), r3=t2 (scratch), r0=v0 (table base).
const fig2 = `
	.data 0x20000
table:
	.space 2048
bytes:
	.space 256

	.text 0x12000
start:
	ldiq  a0, bytes
	ldiq  a1, 256
	ldiq  v0, table
	clr   t0
L1:
	ldbu   t2, 0(a0)
	subl   a1, #1, a1
	lda    a0, 1(a0)
	xor    t0, t2, t2
	srl    t0, #8, t0
	and    t2, #255, t2
	s8addq t2, v0, t2
	ldq    t2, 0(t2)
	xor    t2, t0, t0
	bne    a1, L1
	call_pal halt
`

func run(form accdbt.Form, name string) {
	cfg := accdbt.DefaultVMConfig()
	cfg.Form = form
	cfg.HotThreshold = 10

	v := accdbt.NewVM(accdbt.NewMemory(), cfg)
	if err := v.LoadProgram(accdbt.MustAssemble(fig2)); err != nil {
		panic(err)
	}
	if err := v.Run(0); err != nil {
		panic(err)
	}

	fmt.Printf("=== %s ISA ===\n", name)
	tc := v.TCache()
	// The loop fragment is the hottest one.
	var hot *accdbt.Fragment
	for id := int32(0); int(id) < tc.Len(); id++ {
		f := tc.Frag(id)
		if hot == nil || f.ExecCount > hot.ExecCount {
			hot = f
		}
	}
	for i := range hot.Insts {
		fmt.Printf("    %s\n", hot.Insts[i].String())
	}
	fmt.Printf("  %d I-ISA instructions for %d source instructions, %.1f%% translated copies\n\n",
		v.Stats.TransIInsts/hot.ExecCount, hot.SrcCount,
		100*float64(v.Stats.CopiesExecuted)/float64(v.Stats.TransIInsts))
}

func main() {
	fmt.Println("Kim & Smith CGO 2003, Figure 2: the 164.gzip example loop")
	fmt.Println()
	run(accdbt.Basic, "Basic (Fig. 2c)")
	run(accdbt.Modified, "Modified (Fig. 2d)")
}

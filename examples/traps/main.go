// Traps demonstrates precise trap recovery inside translated code (§2.2).
// A hot loop walks an array until it crosses into unmapped memory. The
// fault is raised in the middle of an accumulator-ISA fragment, yet the VM
// reports the exact faulting V-ISA program counter and fully precise
// architected register state — in the Basic form by materialising
// registers whose current values live only in accumulators (via the PEI
// table built at translation time), and in the Modified form directly from
// the destination-register specifiers.
package main

import (
	"errors"
	"fmt"

	"github.com/ildp/accdbt"
)

const src = `
	.text 0x10000
start:
	ldiq  a0, 0x20000      ; walk from here...
	ldiq  a1, 0x30000      ; ...towards an unmapped page
	clr   v0
	clr   t3
loop:
	ldq   t0, 0(a0)        ; <- will eventually fault here
	addq  v0, t0, v0
	addq  t3, #1, t3       ; iteration counter
	lda   a0, 8(a0)
	subq  a1, a0, t1
	bne   t1, loop
	call_pal halt
`

func run(form accdbt.Form, name string) {
	m := accdbt.NewMemory()
	m.Strict = true
	m.Map(0x20000, 0x1000) // one 4KB page; 0x21000.. faults

	cfg := accdbt.DefaultVMConfig()
	cfg.Form = form
	cfg.HotThreshold = 5

	v := accdbt.NewVM(m, cfg)
	if err := v.LoadProgram(accdbt.MustAssemble(src)); err != nil {
		panic(err)
	}
	err := v.Run(0)

	var trap *accdbt.Trap
	if !errors.As(err, &trap) {
		panic(fmt.Sprintf("expected a trap, got %v", err))
	}

	fmt.Printf("=== %s ISA ===\n", name)
	fmt.Printf("  trap: %v\n", trap)
	fmt.Printf("  faulting V-PC: %#x (the ldq at the loop head)\n", trap.PC)
	fmt.Printf("  architected state at the trap:\n")
	fmt.Printf("    a0 (pointer)  = %#x  <- exactly the faulting address\n", v.CPU().Reg[16])
	fmt.Printf("    t3 (counter)  = %d   <- iterations completed (0x1000/8)\n", v.CPU().Reg[4])
	fmt.Printf("    v0 (checksum) = %d\n", v.CPU().Reg[0])
	fmt.Printf("  executed in translated mode: %d V-insts across %d fragment entries\n\n",
		v.Stats.TransVInsts, v.Stats.FragEntries)
}

func main() {
	fmt.Println("Precise traps in translated code (CGO 2003, §2.2)")
	fmt.Println()
	run(accdbt.Basic, "Basic")
	run(accdbt.Modified, "Modified")
	fmt.Println("Both forms recover the same precise state; the Basic form needed the")
	fmt.Println("PEI-table accumulator mapping, the Modified form its destination")
	fmt.Println("specifiers — the paper's argument for the modified ISA (§2.3).")
}

// Timing drives the two Table-1 timing models directly through the public
// API: the same workload's committed-instruction trace is fed to the
// idealised out-of-order superscalar (running straightened Alpha) and to
// the ILDP distributed core (running the modified accumulator ISA), and
// the models' cycle accounting is broken down side by side — a miniature
// of the paper's Figure 8 methodology for one benchmark.
package main

import (
	"fmt"

	"github.com/ildp/accdbt"
)

func main() {
	const bench = "mcf" // pointer chasing: load latency dominates

	fmt.Printf("workload: %s\n\n", bench)

	// Machine 1: code-straightened Alpha on the 4-wide OoO superscalar.
	ooo := accdbt.NewOoO(func() accdbt.MachineConfig {
		c := accdbt.DefaultOoOConfig()
		c.UseHWRAS = false
		c.DualRASTrace = true
		return c
	}())
	runVM(bench, func(cfg *accdbt.VMConfig) {
		cfg.Straighten = true
		cfg.Sink = ooo
	})
	report("out-of-order superscalar (straightened Alpha)", ooo.Finish())

	// Machine 2: modified accumulator ISA on the 8-PE ILDP core.
	core := accdbt.NewILDPCore(accdbt.DefaultILDPConfig())
	runVM(bench, func(cfg *accdbt.VMConfig) {
		cfg.Sink = core
	})
	report("ILDP 8-PE distributed core (modified accumulator ISA)", core.Finish())

	// Machine 2b: the same core with a 2-cycle global wire latency —
	// the paper's central "technology constraint" question (Fig. 9).
	slow := accdbt.NewILDPCore(func() accdbt.MachineConfig {
		c := accdbt.DefaultILDPConfig()
		c.CommLat = 2
		return c
	}())
	runVM(bench, func(cfg *accdbt.VMConfig) {
		cfg.Sink = slow
	})
	report("ILDP 8-PE with 2-cycle global wire latency", slow.Finish())
}

func runVM(bench string, mut func(*accdbt.VMConfig)) {
	w, err := accdbt.WorkloadByName(bench, 1)
	if err != nil {
		panic(err)
	}
	prog, err := w.Program()
	if err != nil {
		panic(err)
	}
	cfg := accdbt.DefaultVMConfig()
	cfg.HotThreshold = 20
	mut(&cfg)
	v := accdbt.NewVM(accdbt.NewMemory(), cfg)
	if err := v.LoadProgram(prog); err != nil {
		panic(err)
	}
	if err := v.Run(0); err != nil {
		panic(err)
	}
}

func report(name string, r accdbt.TimingResult) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  %d instructions over %d cycles\n", r.Insts, r.Cycles)
	fmt.Printf("  V-ISA IPC %.2f (native %.2f)\n", r.IPC(), r.NativeIPC())
	fmt.Printf("  %.2f mispredicts/1000 insts, %d D-cache misses, %d L2 misses\n\n",
		r.MispredictsPer1000(), r.DCacheMisses, r.L2Misses)
}
